package rendezvous

// SymmRV walk-cache seeding tests: AsymmRV's schedule plays the same UXS
// walk R(u) that SymmRV(n, 1, δ) follows, so its first degree-reporting
// application seeds the SymmRV walk cache and the whole d = 1 procedure
// replays percept-free — no per-node learning pass at all. The seeded
// replay must be round-for-round identical to the learning-pass
// execution; these tests pin that with full trajectory traces.

import (
	"testing"

	"repro/agent"
	"repro/graph"
)

// TestSymmRVSeededReplayMatchesLearning runs AsymmRV followed by SymmRV
// twice: once on a shared scratch (the UniversalRV shape, where the
// schedule's walk seeds the SymmRV cache and SymmRV replays) and once
// with a fresh scratch for SymmRV (forcing the learning pass). The
// per-round trajectories must be identical.
func TestSymmRVSeededReplayMatchesLearning(t *testing.T) {
	cases := []struct {
		g     *graph.Graph
		delta uint64
	}{
		{graph.TwoNode(), 1},
		{graph.Path(3), 1},
		{graph.Cycle(4), 1},
	}
	for _, c := range cases {
		n := uint64(c.g.N())
		var seeded, learned agent.Trace
		shared := agent.Traced(func(w agent.World) {
			var s rvScratch
			s.seedSymm = true
			asymmRVWith(w, n, c.delta, &s)
			symmRVWith(w, n, 1, c.delta, &s)
		}, &seeded)
		split := agent.Traced(func(w agent.World) {
			var s1 rvScratch
			asymmRVWith(w, n, c.delta, &s1)
			var s2 rvScratch // fresh: no seeded cache, SymmRV learns
			symmRVWith(w, n, 1, c.delta, &s2)
		}, &learned)
		for v := 0; v < c.g.N() && v < 2; v++ {
			a := SoloDuration(c.g, v, shared)
			seededStr := seeded.String()
			seeded.Steps = seeded.Steps[:0]
			b := SoloDuration(c.g, v, split)
			learnedStr := learned.String()
			learned.Steps = learned.Steps[:0]
			if a != b {
				t.Fatalf("%s node %d: seeded run took %d rounds, learning run %d", c.g, v, a, b)
			}
			if seededStr != learnedStr {
				t.Fatalf("%s node %d: seeded replay trajectory differs from learning pass\n  seeded:  %.120s\n  learned: %.120s",
					c.g, v, seededStr, learnedStr)
			}
		}
	}
}

// TestSymmRVSeedContents checks the seeded cache entry itself against
// what the learning pass records: same degrees, same entry ports.
func TestSymmRVSeedContents(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(4), graph.Cycle(5)} {
		n := uint64(g.N())
		var fromSchedule, fromLearning symmWalk
		SoloDuration(g, 0, func(w agent.World) {
			var s rvScratch
			s.seedSymm = true
			asymmRVWith(w, n, 1, &s)
			fromSchedule = s.symCache[n]
		})
		SoloDuration(g, 0, func(w agent.World) {
			var s rvScratch
			symmRVWith(w, n, 1, 1, &s)
			fromLearning = s.symCache[n]
		})
		if len(fromSchedule.degs) == 0 {
			t.Fatalf("%s: AsymmRV schedule did not seed the SymmRV walk cache", g)
		}
		if len(fromSchedule.degs) != len(fromLearning.degs) || len(fromSchedule.entries) != len(fromLearning.entries) {
			t.Fatalf("%s: seeded cache shape %d/%d, learned %d/%d", g,
				len(fromSchedule.degs), len(fromSchedule.entries), len(fromLearning.degs), len(fromLearning.entries))
		}
		for i := range fromSchedule.degs {
			if fromSchedule.degs[i] != fromLearning.degs[i] {
				t.Fatalf("%s: seeded degs[%d] = %d, learned %d", g, i, fromSchedule.degs[i], fromLearning.degs[i])
			}
		}
		for i := range fromSchedule.entries {
			if fromSchedule.entries[i] != fromLearning.entries[i] {
				t.Fatalf("%s: seeded entries[%d] = %d, learned %d", g, i, fromSchedule.entries[i], fromLearning.entries[i])
			}
		}
	}
}
