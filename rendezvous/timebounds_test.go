package rendezvous

import (
	"testing"

	"repro/uxs"
)

func TestSaturatingArithmetic(t *testing.T) {
	if satAdd(1, 2) != 3 || satMul(6, 7) != 42 {
		t.Fatal("basic arithmetic broken")
	}
	if satAdd(RoundCap-1, 5) != RoundCap {
		t.Fatal("satAdd does not saturate")
	}
	if satMul(RoundCap/2, 3) != RoundCap {
		t.Fatal("satMul does not saturate")
	}
	if satMul(0, RoundCap) != 0 || satMul(RoundCap, 0) != 0 {
		t.Fatal("satMul zero broken")
	}
	if satPow(2, 100) != RoundCap {
		t.Fatal("satPow does not saturate")
	}
	if satPow(3, 4) != 81 {
		t.Fatal("satPow wrong")
	}
	if satPow(5, 0) != 1 {
		t.Fatal("satPow zero exponent wrong")
	}
}

func TestPathBudget(t *testing.T) {
	if PathBudget(2, 5) != 1 {
		t.Fatal("K2 path budget should be 1")
	}
	if PathBudget(4, 3) != 27 {
		t.Fatalf("PathBudget(4,3) = %d", PathBudget(4, 3))
	}
	if PathBudget(100, 100) != RoundCap {
		t.Fatal("huge path budget should saturate")
	}
}

func TestSymmRVTimeMatchesLemma33(t *testing.T) {
	// T(n,d,δ) = (d+δ)(n-1)^d (M+2) + 2(M+1) with M = |Y(n)|.
	for _, c := range []struct{ n, d, delta uint64 }{
		{2, 1, 1}, {2, 1, 3}, {4, 2, 2}, {5, 2, 4}, {6, 3, 3},
	} {
		m := uint64(uxs.DefaultLength(int(c.n)))
		pow := uint64(1)
		for i := uint64(0); i < c.d; i++ {
			pow *= c.n - 1
		}
		want := (c.d+c.delta)*pow*(m+2) + 2*(m+1)
		if got := SymmRVTime(c.n, c.d, c.delta); got != want {
			t.Fatalf("T(%d,%d,%d) = %d, want %d", c.n, c.d, c.delta, got, want)
		}
	}
}

func TestViewWalkTime(t *testing.T) {
	// n=4: 2 * (3 + 9 + 27) = 78.
	if got := ViewWalkTime(4); got != 78 {
		t.Fatalf("ViewWalkTime(4) = %d, want 78", got)
	}
	if ViewWalkTime(2) != 2 {
		t.Fatalf("ViewWalkTime(2) = %d, want 2", ViewWalkTime(2))
	}
}

func TestActiveRepeats(t *testing.T) {
	trt := UXSRoundTrip(4)
	if r := ActiveRepeats(4, 0); r != 2 {
		t.Fatalf("R(4,0) = %d, want 2", r)
	}
	if r := ActiveRepeats(4, trt); r != 3 {
		t.Fatalf("R(4,T_rt) = %d, want 3", r)
	}
	if r := ActiveRepeats(4, trt+1); r != 4 {
		t.Fatalf("R(4,T_rt+1) = %d, want 4", r)
	}
	// The defining inequality: R * T_rt >= δ + 2*T_rt.
	for _, delta := range []uint64{0, 1, 100, 12345} {
		if ActiveRepeats(4, delta)*trt < delta+2*trt {
			t.Fatalf("slot length too short for δ=%d", delta)
		}
	}
}

func TestPhaseTime(t *testing.T) {
	if PhaseTime(3, 3, 5) != 0 || PhaseTime(2, 5, 1) != 0 {
		t.Fatal("skipped phases must cost zero rounds")
	}
	// d < n, δ < d: AsymmRV only.
	if got, want := PhaseTime(3, 2, 1), 2*AsymmRVTime(3, 1); got != want {
		t.Fatalf("PhaseTime asymm-only = %d, want %d", got, want)
	}
	// d < n, δ >= d: AsymmRV + SymmRV.
	if got, want := PhaseTime(3, 2, 2), 2*AsymmRVTime(3, 2)+SymmRVTime(3, 2, 2); got != want {
		t.Fatalf("PhaseTime full = %d, want %d", got, want)
	}
}

func TestUniversalRVTimeBoundGrowth(t *testing.T) {
	// Proposition 4.1's O(n+δ)^O(n+δ): the bound must explode quickly but
	// stay finite (below saturation) for tiny parameters.
	small := UniversalRVTimeBound(2, 1, 1)
	if small == 0 || small >= RoundCap {
		t.Fatalf("bound for K2/δ=1 out of range: %d", small)
	}
	bigger := UniversalRVTimeBound(4, 2, 2)
	if bigger <= small {
		t.Fatal("bound not increasing")
	}
	if UniversalRVTimeBound(30, 10, 10) != RoundCap {
		t.Fatal("large parameters should saturate the bound")
	}
}

func TestEncodingBitBudgetCoversRealEncodings(t *testing.T) {
	// The schedule budget must dominate the actual encoding bit length for
	// every graph of size <= n (checked for representative families in
	// rv_test.go's duration tests; here just sanity on magnitudes).
	if EncodingBitBudget(2) < 8*8 {
		t.Fatal("K(2) implausibly small")
	}
	if EncodingBitBudget(4) <= EncodingBitBudget(3) {
		t.Fatal("K not increasing")
	}
}
