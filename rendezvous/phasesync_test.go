package rendezvous

import (
	"testing"

	"repro/agent"
	"repro/graph"
)

// phasePrefix replicates the body of UniversalRV for phases 1..maxPhase
// as a terminating program, so that its duration can be measured solo.
func phasePrefix(maxPhase uint64) agent.Program {
	return func(w agent.World) {
		for p := uint64(1); p <= maxPhase; p++ {
			n, d, delta := Untriple(p)
			if d >= n {
				continue
			}
			if PhaseTime(n, d, delta) >= RoundCap {
				w.Wait(RoundCap)
				continue
			}
			asymmRV(w, n, delta)
			w.Wait(AsymmRVTime(n, delta))
			if delta >= d {
				symmRV(w, n, d, delta)
			}
		}
	}
}

// TestPhaseSynchronyInvariant is the load-bearing property behind
// Theorem 3.1's proof: the first P phases of UniversalRV must take an
// IDENTICAL number of rounds from every start node of every graph —
// otherwise the two agents would drift and later phases would run with a
// corrupted delay. It must also equal the closed-form phase-time sum.
func TestPhaseSynchronyInvariant(t *testing.T) {
	const maxPhase = 30 // covers hypotheses up to n=4-ish
	var want uint64
	for p := uint64(1); p <= maxPhase; p++ {
		n, d, delta := Untriple(p)
		want += PhaseTime(n, d, delta)
	}
	graphs := []*graph.Graph{
		graph.TwoNode(),
		graph.Path(4),
		graph.Cycle(5),
		graph.Star(4),
		graph.SymmetricTree(graph.ChainShape(2)),
		graph.OrientedTorus(3, 3),
		graph.RandomConnected(7, 3, 99),
	}
	prog := phasePrefix(maxPhase)
	for _, g := range graphs {
		for v := 0; v < g.N(); v++ {
			got := SoloDuration(g, v, prog)
			if got != want {
				t.Fatalf("%s start %d: phases 1..%d took %d rounds, want %d — phase synchrony broken",
					g, v, maxPhase, got, want)
			}
		}
	}
}

// TestPhaseSynchronyAcrossGraphSizes pins the same invariant when the
// hypothesis n is wrong in both directions (true graph larger and smaller
// than hypothesized), which exercises the budget caps in explore and
// viewWalk.
func TestPhaseSynchronyAcrossGraphSizes(t *testing.T) {
	const maxPhase = 64 // includes hypotheses with n' up to 5 on a 3-node graph
	var want uint64
	for p := uint64(1); p <= maxPhase; p++ {
		n, d, delta := Untriple(p)
		want += PhaseTime(n, d, delta)
	}
	prog := phasePrefix(maxPhase)
	// Graph smaller than most hypotheses.
	small := graph.Path(3)
	// Graph larger than all phase hypotheses in range.
	big := graph.Cycle(12)
	for _, g := range []*graph.Graph{small, big} {
		base := SoloDuration(g, 0, prog)
		if base != want {
			t.Fatalf("%s: duration %d != closed form %d", g, base, want)
		}
		for v := 1; v < g.N(); v++ {
			if got := SoloDuration(g, v, prog); got != base {
				t.Fatalf("%s: starts 0 and %d disagree (%d vs %d)", g, v, base, got)
			}
		}
	}
}
