package rendezvous

import "repro/agent"

// explore runs the paper's Procedure Explore(u, d, δ) (Algorithm 2) at the
// agent's current node u: every port sequence of length d is traversed in
// lexicographic order, each time backtracking along the reverse path and
// then waiting δ-d rounds at u.
//
// Duration padding (DESIGN.md §3): the number of such paths depends on the
// local degrees, but UniversalRV requires every procedure to take an
// input-independent number of rounds, so after the enumeration the agent
// waits out the remaining budget of PathBudget(n,d) iterations. The total
// is exactly PathBudget(n,d) * (d+δ) rounds, which realizes Lemma 3.3's
// bound with equality. Requires 1 <= d <= δ (the paper's precondition).
func explore(w agent.World, n, d, delta uint64) {
	if d < 1 || d > delta {
		panic("rendezvous: explore requires 1 <= d <= delta")
	}
	budget := PathBudget(n, d)
	perIteration := satAdd(d, delta)

	dd := int(d)
	seq := make([]int, dd)     // current port sequence (starts all-zero)
	degs := make([]int, dd)    // degree of the node at each depth
	entries := make([]int, dd) // entry ports, for backtracking
	count := uint64(0)
	for {
		// Traverse the path π given by seq, recording what is needed to
		// reverse it and to advance the enumeration.
		for i := 0; i < dd; i++ {
			degs[i] = w.Degree()
			entries[i] = w.Move(seq[i])
		}
		// Traverse the reverse path back to u.
		for i := dd - 1; i >= 0; i-- {
			w.Move(entries[i])
		}
		w.Wait(delta - d)
		count++
		if count == budget {
			// Budget cap: under a wrong hypothesis (true degrees exceed
			// n-1) there can be more than (n-1)^d paths; stopping here
			// keeps the procedure's duration exact, which is what phase
			// synchrony needs. Under a correct hypothesis the cap never
			// binds before the enumeration finishes.
			break
		}

		// Lexicographic successor: bump the deepest position that has a
		// next port; deeper positions reset to port 0, which is valid at
		// every node regardless of the (yet unknown) degrees there.
		j := dd - 1
		for j >= 0 && seq[j]+1 >= degs[j] {
			seq[j] = 0
			j--
		}
		if j < 0 {
			break
		}
		seq[j]++
	}
	if count < budget {
		w.Wait(satMul(budget-count, perIteration))
	}
}
