package rendezvous

import "repro/agent"

// explore runs the paper's Procedure Explore(u, d, δ) (Algorithm 2) at the
// agent's current node u: every port sequence of length d is traversed in
// lexicographic order, each time backtracking along the reverse path and
// then waiting δ-d rounds at u.
//
// Duration padding (DESIGN.md §3): the number of such paths depends on the
// local degrees, but UniversalRV requires every procedure to take an
// input-independent number of rounds, so after the enumeration the agent
// waits out the remaining budget of PathBudget(n,d) iterations. The total
// is exactly PathBudget(n,d) * (d+δ) rounds, which realizes Lemma 3.3's
// bound with equality. Requires 1 <= d <= δ (the paper's precondition).
func explore(w agent.World, n, d, delta uint64) {
	var s rvScratch
	exploreWith(w, n, d, delta, &s)
}

func exploreWith(w agent.World, n, d, delta uint64, s *rvScratch) {
	if d < 1 || d > delta {
		panic("rendezvous: explore requires 1 <= d <= delta")
	}
	budget := PathBudget(n, d)
	perIteration := satAdd(d, delta)

	// Budget cap: under a wrong hypothesis (true degrees exceed n-1) there
	// can be more than (n-1)^d paths; stopping at the budget keeps the
	// procedure's duration exact, which is what phase synchrony needs.
	// Under a correct hypothesis the cap never binds before the
	// enumeration finishes.
	count := exploreEnumerate(w, d, delta, budget, s)
	if count < budget {
		w.Wait(satMul(budget-count, perIteration))
	}
}

// exploreEnumerate is the enumeration core shared by the padded explore
// and the paper-literal unpaddedExplore: all port sequences of length d in
// lexicographic order, each traversed forward, backtracked along the
// reverse path, and followed by a δ-d wait — capped at maxIter iterations.
// It returns the number of iterations performed (d+δ rounds each). The
// enumeration buffers live in the scratch: SymmRV calls this at every
// node of its UXS walk, so per-call allocation would dominate the phase.
func exploreEnumerate(w agent.World, d, delta, maxIter uint64, s *rvScratch) uint64 {
	count := uint64(0)
	if d == 1 {
		// Depth-1 paths batch whole iterations: one script moves out
		// through port p and straight back through the entry port —
		// which is exactly Rel(0). The script lives in the scratch: a
		// local array would escape through the MoveSeq interface call,
		// one heap allocation per Explore.
		step := scratchInts(&s.expSeq, 2)
		step[0], step[1] = 0, agent.Rel(0)
		for {
			deg := w.Degree()
			w.MoveSeq(step)
			w.Wait(delta - d)
			count++
			if count == maxIter || step[0]+1 >= deg {
				return count
			}
			step[0]++
		}
	}

	dd := int(d)
	seq := scratchInts(&s.expSeq, dd) // current port sequence (starts all-zero)
	for i := range seq {
		seq[i] = 0
	}
	degs := scratchInts(&s.expDegs, dd)       // degree of the node at each depth
	entries := scratchInts(&s.expEntries, dd) // entry ports, for backtracking
	rev := scratchInts(&s.expRev, dd)         // reversed entries, batched backtrack script

	// The forward walk needs the degree at every depth to compute the
	// lexicographic successor — a percept only an unscripted visit can
	// deliver. But degrees learned once stay valid: the successor of a
	// sequence differs from it only at one bumped position j (deeper
	// positions reset to port 0), so the next path revisits the same nodes
	// at depths 0..j and degs[0..j] carry over. The moves through those
	// depths — ports known, percepts already learned — batch into a single
	// script; only the suffix beyond the bump (new nodes, unknown degrees)
	// is walked per-move. In the common case (bump at the deepest
	// position) the entire forward walk is one script.
	known := 0 // leading depths whose degs[] entries are valid
	for {
		if known > 0 {
			scripted := w.MoveSeq(seq[:known])
			copy(entries, scripted)
		}
		for i := known; i < dd; i++ {
			degs[i] = w.Degree()
			entries[i] = w.Move(seq[i])
		}
		// Traverse the reverse path back to u, as one batched script.
		for i, j := 0, dd-1; j >= 0; i, j = i+1, j-1 {
			rev[i] = entries[j]
		}
		w.MoveSeq(rev)
		w.Wait(delta - d)
		count++
		if count == maxIter {
			return count
		}

		// Lexicographic successor: bump the deepest position that has a
		// next port; deeper positions reset to port 0, which is valid at
		// every node regardless of the (yet unknown) degrees there.
		j := dd - 1
		for j >= 0 && seq[j]+1 >= degs[j] {
			seq[j] = 0
			j--
		}
		if j < 0 {
			return count
		}
		seq[j]++
		known = j + 1 // nodes at depths 0..j are revisited next iteration
	}
}
