package rendezvous

import "repro/agent"

// explore runs the paper's Procedure Explore(u, d, δ) (Algorithm 2) at the
// agent's current node u: every port sequence of length d is traversed in
// lexicographic order, each time backtracking along the reverse path and
// then waiting δ-d rounds at u.
//
// Duration padding (DESIGN.md §3): the number of such paths depends on the
// local degrees, but UniversalRV requires every procedure to take an
// input-independent number of rounds, so after the enumeration the agent
// waits out the remaining budget of PathBudget(n,d) iterations. The total
// is exactly PathBudget(n,d) * (d+δ) rounds, which realizes Lemma 3.3's
// bound with equality. Requires 1 <= d <= δ (the paper's precondition).
func explore(w agent.World, n, d, delta uint64) {
	var s rvScratch
	exploreWith(w, n, d, delta, &s)
}

func exploreWith(w agent.World, n, d, delta uint64, s *rvScratch) {
	if d < 1 || d > delta {
		panic("rendezvous: explore requires 1 <= d <= delta")
	}
	defer agent.SetPhase(w, agent.SetPhase(w, agent.PhaseExplore))
	budget := PathBudget(n, d)
	perIteration := satAdd(d, delta)

	// Budget cap: under a wrong hypothesis (true degrees exceed n-1) there
	// can be more than (n-1)^d paths; stopping at the budget keeps the
	// procedure's duration exact, which is what phase synchrony needs.
	// Under a correct hypothesis the cap never binds before the
	// enumeration finishes.
	count := exploreEnumerate(w, d, delta, budget, s)
	if count < budget {
		w.Wait(satMul(budget-count, perIteration))
	}
}

// appendExplore1Iters appends the enumeration part of Explore(·, 1, δ)
// at a node of the given degree to buf: per enumerated port, the
// out-and-back pair [p, Rel(0)] followed by the δ-1 inter-iteration pad.
// It returns the buffer and the number of iterations emitted. This is
// THE canonical d = 1 round structure; every emitter — the batched
// enumeration, the fused walk step, and the cached-phase replay
// (replaySymmRV1, which streams so long pads stay un-materialized) —
// goes through it or must match it action for action.
func appendExplore1Iters(buf []int, deg int, maxIter, delta uint64) ([]int, uint64) {
	pad := delta - 1
	iters := uint64(deg)
	if maxIter < iters {
		iters = maxIter
	}
	for p := uint64(0); p < iters; p++ {
		buf = append(buf, int(p), agent.Rel(0))
		for q := uint64(0); q < pad; q++ {
			buf = append(buf, agent.ScriptWait)
		}
	}
	return buf, iters
}

// appendExplore1 appends the full action stream of Explore(·, 1, δ):
// the enumeration plus the duration-padding trailer that rounds the
// procedure up to exactly PathBudget(n, 1)·(1+δ) rounds.
func appendExplore1(buf []int, deg int, budget, delta uint64) []int {
	buf, iters := appendExplore1Iters(buf, deg, budget, delta)
	trail := satMul(budget-iters, satAdd(1, delta))
	for q := uint64(0); q < trail; q++ {
		buf = append(buf, agent.ScriptWait)
	}
	return buf
}

// explore1ScriptLen returns the length appendExplore1 would emit, so
// callers can budget-check before materializing (saturating arithmetic:
// huge pads fail the maxExploreScript comparison rather than overflow).
func explore1ScriptLen(deg int, budget, delta uint64) uint64 {
	iters := uint64(deg)
	if budget < iters {
		iters = budget
	}
	perIter := satAdd(1, delta)
	return satAdd(satMul(iters, perIter), satMul(budget-iters, perIter))
}

// exploreThenMove performs Explore(u, d, δ) followed by one move through
// the given outgoing port (applied modulo the degree of u) and returns
// the entry port into, and the degree of, the node the move lands on.
// SymmRV executes exactly this pair at every node of its UXS walk, and
// the port is known before the Explore starts, so for the batchable
// d = 1 form the enumeration, its duration padding AND the walk step
// fuse into a single degree-reporting script — one scheduler wakeup per
// walk node, with the landed node's degree (SymmRV's walk bookkeeping)
// read straight from the grant's degree stream. The fallback is the
// split submission with identical per-round behavior.
func exploreThenMove(w agent.World, n, d, delta uint64, s *rvScratch, port int) (entry, deg int) {
	// The fused script is dominated by the enumeration; the appended walk
	// step rides along under the explore tag.
	defer agent.SetPhase(w, agent.SetPhase(w, agent.PhaseExplore))
	if d == 1 && delta >= 1 {
		budget := PathBudget(n, 1)
		if explore1ScriptLen(w.Degree(), budget, delta) < maxExploreScript {
			script := appendExplore1(s.expScript[:0], w.Degree(), budget, delta)
			script = append(script, port)
			s.expScript = script
			entries, degs := w.MoveSeqDegrees(script)
			return entries[len(entries)-1], degs[len(degs)-1]
		}
	}
	exploreWith(w, n, d, delta, s)
	return w.Move(port), w.Degree()
}

// exploreEnumerate is the enumeration core shared by the padded explore
// and the paper-literal unpaddedExplore: all port sequences of length d in
// lexicographic order, each traversed forward, backtracked along the
// reverse path, and followed by a δ-d wait — capped at maxIter iterations.
// It returns the number of iterations performed (d+δ rounds each). The
// enumeration buffers live in the scratch: SymmRV calls this at every
// node of its UXS walk, so per-call allocation would dominate the phase.

// maxExploreScript caps the length of a fully batched explore script
// (the buffer persists in the agent's scratch); enumerations whose
// batched form would exceed it fall back to per-iteration submission,
// where the scheduler's wait fast-forward does the heavy lifting.
const maxExploreScript = 4096

func exploreEnumerate(w agent.World, d, delta, maxIter uint64, s *rvScratch) uint64 {
	count := uint64(0)
	pad := delta - d
	if d == 1 {
		// Depth-1 paths need no percepts at all beyond the start node's
		// degree, already known: iteration p moves out through port p and
		// straight back through the entry port — which is exactly Rel(0) —
		// then pads with δ-d waits. The whole enumeration therefore
		// batches into ONE script (moves and in-script wait runs alike;
		// the trailer, when any, is exploreWith's wait), built in the
		// scratch; the scheduler wakes the agent once per Explore instead
		// of once per path.
		iters := uint64(w.Degree())
		if maxIter < iters {
			iters = maxIter
		}
		per := 2 + pad
		if per <= maxExploreScript && iters*per <= maxExploreScript {
			script, emitted := appendExplore1Iters(s.expScript[:0], w.Degree(), maxIter, delta)
			s.expScript = script
			agent.RunSeq(w, script)
			return emitted
		}
		// Padding too long to materialize: per-iteration submission (the
		// world merges each pad into the next iteration's script when it
		// is short enough, and fast-forwards it otherwise).
		step := scratchInts(&s.expSeq, 2)
		step[0], step[1] = 0, agent.Rel(0)
		for {
			deg := w.Degree()
			agent.RunSeq(w, step)
			w.Wait(pad)
			count++
			if count == maxIter || step[0]+1 >= deg {
				return count
			}
			step[0]++
		}
	}

	dd := int(d)
	seq := scratchInts(&s.expSeq, dd) // current port sequence (starts all-zero)
	for i := range seq {
		seq[i] = 0
	}
	degs := scratchInts(&s.expDegs, dd)       // degree of the node at each depth
	entries := scratchInts(&s.expEntries, dd) // entry ports, for backtracking
	rev := scratchInts(&s.expRev, dd)         // reversed entries, batched backtrack script

	// The forward walk needs the degree at every depth to compute the
	// lexicographic successor — and the current port sequence is itself a
	// complete forward script (its ports are valid by construction: the
	// successor bump keeps seq[j]+1 < degs[j] and resets deeper positions
	// to port 0, valid at every node). MoveSeqDegrees therefore plays the
	// ENTIRE forward walk in one grant whose degree stream fills degs[]
	// for the next successor computation and whose entry stream fills the
	// backtrack path — no per-node suffix wakeups. ingest maps the
	// streams: the move at forward offset i enters the depth-(i+1) node,
	// so degrees[i] lands in degs[i+1] (degs[0], the degree of u itself,
	// is a plain percept read once); degs[dd] is never needed.
	degs[0] = w.Degree()
	ingest := func(gotE, gotD []int) {
		copy(entries, gotE)
		copy(degs[1:dd], gotD)
	}
	ingest(w.MoveSeqDegrees(seq))
	for {
		// The reverse path back to u, played batched below.
		for i, j := 0, dd-1; j >= 0; i, j = i+1, j-1 {
			rev[i] = entries[j]
		}
		count++
		last := count == maxIter
		j := -1
		if !last {
			// Lexicographic successor: bump the deepest position that
			// has a next port; deeper positions reset to port 0, which is
			// valid at every node regardless of the (yet unknown) degrees
			// there.
			j = dd - 1
			for j >= 0 && seq[j]+1 >= degs[j] {
				seq[j] = 0
				j--
			}
			last = j < 0
		}
		if last {
			agent.RunSeq(w, rev)
			w.Wait(delta - d)
			return count
		}
		seq[j]++

		// Merge this iteration's backtrack, the inter-iteration pad and
		// the whole next forward walk into one degree-reporting script —
		// the moves and their per-round timing are exactly those of the
		// split submission, but the scheduler wakes the agent once per
		// iteration. Long pads are not materialized; they go through the
		// wait fast-forward instead.
		if total := uint64(2*dd) + pad; total <= maxExploreScript {
			script := scratchInts(&s.expScript, int(total))
			copy(script, rev)
			for q := 0; q < int(pad); q++ {
				script[dd+q] = agent.ScriptWait
			}
			fo := dd + int(pad)
			copy(script[fo:], seq)
			gotE, gotD := w.MoveSeqDegrees(script)
			ingest(gotE[fo:], gotD[fo:])
		} else {
			agent.RunSeq(w, rev)
			w.Wait(pad)
			ingest(w.MoveSeqDegrees(seq))
		}
	}
}
