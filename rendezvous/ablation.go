package rendezvous

import (
	"fmt"

	"repro/agent"
	"repro/uxs"
)

// NewUnpaddedSymmRV is the paper-literal SymmRV without duration padding:
// Explore enumerates exactly the paths that exist (no top-up to (n-1)^d
// iterations), so the procedure's duration depends on the degrees the
// walk encounters. Lemma 3.2 still holds for symmetric pairs — the two
// agents see identical degree sequences, so their schedules stay aligned —
// but the duration is *input-dependent*, which silently breaks
// UniversalRV's phase synchrony for nonsymmetric starts. The ablation
// experiment (E13) demonstrates exactly that failure mode; the padded
// NewSymmRV is the correct building block.
func NewUnpaddedSymmRV(n, d, delta uint64) (agent.Program, error) {
	if n < 2 || d < 1 || d >= n || delta < d {
		return nil, fmt.Errorf("rendezvous: UnpaddedSymmRV parameter error (n=%d d=%d δ=%d)", n, d, delta)
	}
	if SymmRVTime(n, d, delta) >= RoundCap {
		return nil, fmt.Errorf("rendezvous: UnpaddedSymmRV(n=%d,d=%d,δ=%d) saturates RoundCap", n, d, delta)
	}
	return func(w agent.World) { unpaddedSymmRV(w, n, d, delta) }, nil
}

func unpaddedSymmRV(w agent.World, n, d, delta uint64) {
	y := uxs.Generate(int(n))
	// One scratch for the whole walk: the enumeration (and its batched
	// d=1 script) is rebuilt at every node, and a per-node scratch would
	// reallocate those buffers each time.
	var s rvScratch
	unpaddedExploreWith(w, d, delta, &s)
	entry := w.Move(0)
	entries := make([]int, 1, len(y)+1)
	entries[0] = entry
	unpaddedExploreWith(w, d, delta, &s)
	for _, a := range y {
		p := (entry + a) % w.Degree()
		entry = w.Move(p)
		entries = append(entries, entry)
		unpaddedExploreWith(w, d, delta, &s)
	}
	for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
		entries[i], entries[j] = entries[j], entries[i]
	}
	agent.RunSeq(w, entries)
}

// unpaddedExplore is Algorithm 2 verbatim: all existing paths of length d
// in lexicographic order, each with backtracking and a δ-d wait — and
// nothing else (no top-up to the PathBudget iteration count).
func unpaddedExplore(w agent.World, d, delta uint64) {
	var s rvScratch
	unpaddedExploreWith(w, d, delta, &s)
}

func unpaddedExploreWith(w agent.World, d, delta uint64, s *rvScratch) {
	exploreEnumerate(w, d, delta, ^uint64(0), s)
}
