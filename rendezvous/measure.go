package rendezvous

import (
	"sync"

	"repro/agent"
	"repro/graph"
	"repro/sim"
)

// MeasureSymmRVDuration runs SymmRV(n, d, δ) for both agents of the STIC
// [(u,v), δ] and returns each agent's local clock at completion. It is
// intended for configurations that do not meet (e.g. δ below Shrink), so
// both programs run to completion; it returns nil if the agents met or
// the budget ran out first. With duration padding both readings equal
// SymmRVTime(n, d, δ) — experiment E5's check.
func MeasureSymmRVDuration(g *graph.Graph, u, v int, n, d, delta uint64) []uint64 {
	return measureDurations(g, u, v, delta, 3*SymmRVTime(n, d, delta)+delta,
		func(w agent.World) { symmRV(w, n, d, delta) })
}

// MeasureAsymmRVDuration is the AsymmRV analogue of
// MeasureSymmRVDuration; both readings must equal AsymmRVTime(n, δ).
func MeasureAsymmRVDuration(g *graph.Graph, u, v int, n, delta uint64) []uint64 {
	return measureDurations(g, u, v, delta, 3*AsymmRVTime(n, delta)+delta,
		func(w agent.World) { asymmRV(w, n, delta) })
}

// MeasureUnpaddedSymmRVDuration mirrors MeasureSymmRVDuration for the
// paper-literal ablation (NewUnpaddedSymmRV): on non-meeting
// configurations it returns both agents' clocks, which differ whenever
// the two starts see different degree sequences — the desynchronization
// that duration padding exists to prevent (experiment E13).
func MeasureUnpaddedSymmRVDuration(g *graph.Graph, u, v int, n, d, delta uint64) []uint64 {
	return measureDurations(g, u, v, delta, 3*SymmRVTime(n, d, delta)+delta,
		func(w agent.World) { unpaddedSymmRV(w, n, d, delta) })
}

// SoloDuration runs a terminating agent program alone on g (no partner,
// no meeting interference) and returns its local clock at completion. A
// procedure's duration depends only on the agent's own walk, so this
// measures exactly what the agent would take inside a two-agent run.
func SoloDuration(g *graph.Graph, start int, body agent.Program) uint64 {
	w := &soloWorld{g: g, pos: start, deg: g.Degree(start), entry: -1}
	body(w)
	return w.clock
}

// SoloUnpaddedSymmRVDuration measures the ablation's duration for a
// single start node.
func SoloUnpaddedSymmRVDuration(g *graph.Graph, start int, n, d, delta uint64) uint64 {
	return SoloDuration(g, start, func(w agent.World) { unpaddedSymmRV(w, n, d, delta) })
}

// SoloSymmRVDuration measures the padded procedure's duration for a
// single start node (always SymmRVTime(n,d,δ); asserted by tests).
func SoloSymmRVDuration(g *graph.Graph, start int, n, d, delta uint64) uint64 {
	return SoloDuration(g, start, func(w agent.World) { symmRV(w, n, d, delta) })
}

// soloWorld walks the graph directly — single-agent execution needs no
// scheduler.
type soloWorld struct {
	g       *graph.Graph
	pos     int
	deg     int
	entry   int
	clock   uint64
	entries []int // reusable MoveSeq result buffers (see the World contract)
	degs    []int
}

func (w *soloWorld) Degree() int    { return w.deg }
func (w *soloWorld) EntryPort() int { return w.entry }
func (w *soloWorld) Clock() uint64  { return w.clock }

func (w *soloWorld) Move(port int) int {
	if port < 0 || port >= w.deg {
		panic(agent.ErrBadPort{Port: port, Degree: w.deg})
	}
	to, ep := w.g.Succ(w.pos, port)
	w.pos, w.entry, w.deg = to, ep, w.g.Degree(to)
	w.clock++
	return ep
}

func (w *soloWorld) Wait(rounds uint64) { w.clock += rounds }

// MoveSeq steps a batched script directly against the graph — the native
// equivalent of agent.RunScript without per-move interface dispatch, with
// agent.ActionPort's resolution fused into a single adjacency-row access
// per move (the same fusion as the engine's scriptStep; the batched
// rendezvous procedures put every action through this loop). The
// returned slice is the world's reusable buffer, per the World contract.
func (w *soloWorld) MoveSeq(actions []int) []int { return w.runScript(actions, nil) }

// MoveSeqDegrees shares MoveSeq's fused loop with the degree stream
// filled alongside (one reusable buffer each, per the World contract) —
// the direct single-agent analogue of the engine's degree-reporting
// grant, and the world BenchmarkViewWalkBatched drives.
func (w *soloWorld) MoveSeqDegrees(actions []int) ([]int, []int) {
	if len(actions) == 0 {
		return nil, nil
	}
	if cap(w.degs) >= len(actions) {
		w.degs = w.degs[:len(actions)]
	} else {
		w.degs = make([]int, len(actions))
	}
	return w.runScript(actions, w.degs), w.degs
}

// runScript is the shared script loop; degs, when non-nil, receives the
// per-action degree percept.
func (w *soloWorld) runScript(actions, degs []int) []int {
	if len(actions) == 0 {
		return nil
	}
	if cap(w.entries) >= len(actions) {
		w.entries = w.entries[:len(actions)]
	} else {
		w.entries = make([]int, len(actions))
	}
	for i, a := range actions {
		if a != agent.ScriptWait {
			adj := w.g.Adj(w.pos)
			p, _ := agent.ActionPort(a, w.entry, len(adj))
			h := adj[p]
			w.pos, w.entry = h.To, h.ToPort
			w.deg = len(w.g.Adj(h.To))
		}
		w.clock++
		w.entries[i] = w.entry
		if degs != nil {
			degs[i] = w.deg
		}
	}
	return w.entries
}

// measureDurations runs body for both agents and collects their local
// clocks after body returns. The two agent goroutines may run
// concurrently between scheduler interactions, so the slice is guarded.
func measureDurations(g *graph.Graph, u, v int, delta, budget uint64, body agent.Program) []uint64 {
	var mu sync.Mutex
	var durations []uint64
	prog := func(w agent.World) {
		body(w)
		mu.Lock()
		durations = append(durations, w.Clock())
		mu.Unlock()
	}
	res := sim.Run(g, prog, u, v, delta, sim.Config{Budget: budget})
	if res.Outcome != sim.NeverMeet {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	return durations
}
