package rendezvous

import "testing"

func TestPairFormula(t *testing.T) {
	// f(x,y) = x + (x+y-1)(x+y-2)/2, hand-computed values.
	cases := []struct{ x, y, want uint64 }{
		{1, 1, 1},
		{1, 2, 2}, {2, 1, 3},
		{1, 3, 4}, {2, 2, 5}, {3, 1, 6},
		{1, 4, 7}, {2, 3, 8}, {3, 2, 9}, {4, 1, 10},
	}
	for _, c := range cases {
		if got := Pair(c.x, c.y); got != c.want {
			t.Fatalf("Pair(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestPairIsBijection(t *testing.T) {
	seen := map[uint64][2]uint64{}
	for x := uint64(1); x <= 60; x++ {
		for y := uint64(1); y <= 60; y++ {
			p := Pair(x, y)
			if prev, dup := seen[p]; dup {
				t.Fatalf("Pair collision: (%d,%d) and (%v) -> %d", x, y, prev, p)
			}
			seen[p] = [2]uint64{x, y}
		}
	}
	// Surjectivity onto an initial segment: every value 1..N is hit.
	for p := uint64(1); p <= 1000; p++ {
		if _, ok := seen[p]; !ok {
			t.Fatalf("Pair misses value %d", p)
		}
	}
}

func TestUnpairInvertsPair(t *testing.T) {
	for p := uint64(1); p <= 20000; p++ {
		x, y := Unpair(p)
		if x < 1 || y < 1 {
			t.Fatalf("Unpair(%d) = (%d,%d) not positive", p, x, y)
		}
		if Pair(x, y) != p {
			t.Fatalf("Pair(Unpair(%d)) = %d", p, Pair(x, y))
		}
	}
}

func TestTripleRoundTrip(t *testing.T) {
	for p := uint64(1); p <= 5000; p++ {
		n, d, delta := Untriple(p)
		if PhaseFor(n, d, delta) != p {
			t.Fatalf("PhaseFor(Untriple(%d)) = %d", p, PhaseFor(n, d, delta))
		}
	}
}

func TestEveryTripleHasAPhase(t *testing.T) {
	for n := uint64(1); n <= 12; n++ {
		for d := uint64(1); d <= 12; d++ {
			for delta := uint64(0); delta <= 12; delta++ {
				p := PhaseFor(n, d, delta)
				gn, gd, gdelta := Untriple(p)
				if gn != n || gd != d || gdelta != delta {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", n, d, delta, p, gn, gd, gdelta)
				}
			}
		}
	}
}

func TestPairPanicsOnZero(t *testing.T) {
	for _, c := range [][2]uint64{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Pair(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Pair(c[0], c[1])
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Unpair(0) did not panic")
		}
	}()
	Unpair(0)
}
