package rendezvous

import (
	"fmt"

	"repro/agent"
)

// This file implements the repository's main extension beyond the paper:
// an iterative-deepening AsymmRV. The paper-faithful asymmRV explores the
// full depth-(n-1) view unconditionally — exponential physical work even
// when the two views differ at depth 1 (they usually do). The deepening
// variant runs sub-phases D = 1, 2, ..., n-1: each sub-phase physically
// builds only the depth-D view and plays a label schedule sized for depth
// D. All sub-phase durations are closed-form functions of (n, D, δ), so
// two agents stay in lock-step through every sub-phase; at the first
// depth where their views differ the labels split and the standard
// active/passive overlap argument forces the meeting. Universality is
// unchanged (depth n-1 is still reached in the worst case, Norris'
// theorem), but the expected physical cost drops from exponential to the
// cost of the distinguishing depth — measured in experiment E19.

// ViewWalkTimeDepth is ViewWalkTime generalized to an explicit depth:
// 2 * sum_{i=1..depth} (n-1)^i rounds.
func ViewWalkTimeDepth(n, depth uint64) uint64 {
	if n < 2 || depth == 0 {
		return 0
	}
	total := uint64(0)
	p := uint64(1)
	for i := uint64(1); i <= depth; i++ {
		p = satMul(p, n-1)
		total = satAdd(total, p)
	}
	return satMul(2, total)
}

// EncodingBitBudgetDepth is EncodingBitBudget generalized to an explicit
// truncation depth.
func EncodingBitBudgetDepth(n, depth uint64) uint64 {
	nodes := uint64(1)
	p := uint64(1)
	for i := uint64(1); i <= depth; i++ {
		p = satMul(p, n-1)
		nodes = satAdd(nodes, p)
	}
	nodes = satAdd(nodes, p) // frontier marks at the truncation depth
	return satMul(satMul(nodes, encBytesPerNode), 8)
}

// AsymmRVIDTime returns the exact duration of the iterative-deepening
// variant: the sum over sub-phases D = 1..n-1 of view walk plus schedule.
func AsymmRVIDTime(n, delta uint64) uint64 {
	if n < 2 {
		return 0
	}
	slot := satMul(ActiveRepeats(n, delta), UXSRoundTrip(n))
	total := uint64(0)
	for d := uint64(1); d <= n-1; d++ {
		total = satAdd(total, ViewWalkTimeDepth(n, d))
		total = satAdd(total, satMul(EncodingBitBudgetDepth(n, d), slot))
	}
	return total
}

// NewAsymmRVID returns the iterative-deepening AsymmRV. Same contract as
// NewAsymmRV — meets every nonsymmetric STIC whose delay matches the
// hypothesis, runs for exactly AsymmRVIDTime(n, δ) rounds, ends at home —
// with physical work proportional to the distinguishing depth of the pair
// rather than always exponential in n.
func NewAsymmRVID(n, delta uint64) (agent.Program, error) {
	if n < 2 {
		return nil, fmt.Errorf("rendezvous: AsymmRVID requires n >= 2, got %d", n)
	}
	if AsymmRVIDTime(n, delta) >= RoundCap {
		return nil, fmt.Errorf("rendezvous: AsymmRVID(n=%d,δ=%d) duration saturates RoundCap", n, delta)
	}
	return func(w agent.World) { asymmRVID(w, n, delta) }, nil
}

func asymmRVID(w agent.World, n, delta uint64) {
	var s rvScratch
	asymmRVIDWith(w, n, delta, &s)
}

func asymmRVIDWith(w agent.World, n, delta uint64, s *rvScratch) {
	defer agent.SetPhase(w, agent.SetPhase(w, agent.PhaseSchedule))
	walk := s.uxsWalkFor(n)
	repeats := ActiveRepeats(n, delta)
	slotLen := satMul(repeats, UXSRoundTrip(n))
	for d := uint64(1); d <= n-1; d++ {
		// Sub-phase D: physical view walk to depth D, padded. The scratch
		// tree and label buffer are reused across sub-phases and phases.
		budget := ViewWalkTimeDepth(n, d)
		start := w.Clock()
		viewWalkWith(w, int(d), budget, &s.tree, s)
		used := w.Clock() - start
		w.Wait(budget - used)

		// Depth-D label schedule.
		s.enc = s.tree.AppendEncode(s.enc[:0])
		slots := EncodingBitBudgetDepth(n, d)
		playSchedule(w, s.enc, slots, repeats, slotLen, walk)
	}
}

// playSchedule runs the active/passive label schedule shared by asymmRV
// and asymmRVID: slot k is active (repeats UXS round trips) iff bit k of
// enc is 1; passive slots (and the padding beyond the label) are merged
// waits. Exactly slots*slotLen rounds.
//
// Once the walk's home-cycle period is cached (after the first active
// slot of the first schedule at this size), every remaining active slot
// is a known percept-free action block, so the whole label region of the
// schedule streams through chunked scripts — active trips as moves,
// passive runs as single SeqWait actions the scheduler consumes in O(1).
// The rounds and positions are identical to the slot-by-slot submission;
// only the script boundaries differ.
func playSchedule(w agent.World, enc []byte, slots, repeats, slotLen uint64, walk uxsWalk) {
	defer agent.SetPhase(w, agent.SetPhase(w, agent.PhaseSchedule))
	encBits := uint64(len(enc)) * 8
	pendingPassive := uint64(0)
	var st *scriptStream
	var rot []int
	startStream := func() bool {
		if st != nil {
			return true
		}
		if walk.cache == nil || 2*len(walk.fwd) > maxTripScript {
			return false
		}
		period, ok := walk.cache[walk.n]
		if !ok {
			return false
		}
		// One active slot is repeats repetitions of [fwd rev] — the cached
		// period rotated by half (cf. uxsWalk.playKnown).
		l := len(walk.fwd)
		rot = scratchInts(walk.rev, 2*l)
		copy(rot, period[l:])
		copy(rot[l:], period[:l])
		// Size the chunk to the schedule's real volume (active slots are
		// moves, each gap a single SeqWait slot) so small schedules use
		// small buffers: the experiment harness churns through many
		// short-lived programs, and a full-cap chunk per agent was a
		// measurable allocator.
		ones := uint64(0)
		for k := uint64(0); k < encBits && k < slots; k += 8 {
			b := enc[k/8]
			for ; b != 0; b &= b - 1 {
				ones++
			}
		}
		need := satAdd(satMul(ones, satMul(repeats, uint64(2*l))), satAdd(ones, 2))
		chunk := maxTripScript
		if need < uint64(chunk) {
			chunk = int(need)
		}
		st = &scriptStream{w: w, buf: scratchInts(walk.chunk, chunk)[:0], chunk: chunk}
		return true
	}
	for k := uint64(0); k < slots; k++ {
		if k >= encBits {
			pendingPassive += slots - k
			break
		}
		bit := enc[k/8] >> (7 - k%8) & 1
		if bit == 0 {
			pendingPassive++
			continue
		}
		if pendingPassive > 0 {
			if st != nil {
				st.wait(satMul(pendingPassive, slotLen))
			} else {
				w.Wait(satMul(pendingPassive, slotLen))
			}
			pendingPassive = 0
		}
		if startStream() {
			for r := uint64(0); r < repeats; r++ {
				st.acts(rot)
			}
		} else {
			walk.roundTrips(w, repeats)
		}
	}
	if st != nil {
		st.flush()
		*walk.chunk = st.buf[:0]
	}
	if pendingPassive > 0 {
		w.Wait(satMul(pendingPassive, slotLen))
	}
}

// FastUniversalRV is UniversalRV with the iterative-deepening AsymmRV
// substituted — the extension's end-to-end payoff. The phase structure,
// hypothesis enumeration and SymmRV part are identical; only the
// asymmetric procedure (and its bookkeeping budget) changes. The
// guarantee set is the same (Corollary 3.1); meeting times on
// nonsymmetric STICs drop sharply (experiment E19).
func FastUniversalRV() agent.Program {
	return func(w agent.World) {
		var s rvScratch // reused across every phase of this agent
		s.seedSymm = true
		for p := uint64(1); ; p++ {
			n, d, delta := Untriple(p)
			if d >= n {
				continue
			}
			if FastPhaseTime(n, d, delta) >= RoundCap {
				w.Wait(RoundCap)
				continue
			}
			asymmRVIDWith(w, n, delta, &s)
			w.Wait(AsymmRVIDTime(n, delta))
			if delta >= d {
				symmRVWith(w, n, d, delta, &s)
			}
		}
	}
}

// FastPhaseTime is PhaseTime with the deepening AsymmRV budget.
func FastPhaseTime(n, d, delta uint64) uint64 {
	if d >= n {
		return 0
	}
	total := satMul(2, AsymmRVIDTime(n, delta))
	if delta >= d {
		total = satAdd(total, SymmRVTime(n, d, delta))
	}
	return total
}

// FastUniversalRVTimeBound is the guarantee analogue of
// UniversalRVTimeBound for the fast variant.
func FastUniversalRVTimeBound(n, d, delta uint64) uint64 {
	last := PhaseFor(n, d, delta)
	total := uint64(0)
	for p := uint64(1); p <= last; p++ {
		hn, hd, hdelta := Untriple(p)
		total = satAdd(total, FastPhaseTime(hn, hd, hdelta))
		if total == RoundCap {
			return RoundCap
		}
	}
	return total
}
