package rendezvous

import "repro/agent"

// UniversalRV returns the paper's Algorithm 3: the universal deterministic
// rendezvous algorithm that uses no a priori knowledge whatsoever — not
// the graph, not its size, not the initial positions, not the delay.
//
// It runs in phases P = 1, 2, ...; phase P decodes the hypothesis triple
// (n, d, δ) = g^{-1}(P) and, when d < n, first executes AsymmRV(n) (in
// the hope the positions are nonsymmetric), returns home, waits out the
// bookkeeping budget, and then, when δ >= d, executes SymmRV(n, d, δ) (in
// the hope the positions are symmetric with Shrink = d and delay δ).
//
// Every procedure has an input-independent, exactly-known duration (see
// the duration-padding note in DESIGN.md), so the two agents enter every
// phase — and every procedure within it — with their original delay. By
// Theorem 3.1, rendezvous happens at the latest in the phase whose triple
// matches the true parameters, for every feasible STIC (Corollary 3.1):
// nonsymmetric starts with any delay, or symmetric starts with
// δ >= Shrink(u, v).
//
// Phases whose padded budgets saturate RoundCap are replaced by a
// RoundCap-long wait: a simulation would need 2^62 rounds to get past
// them, so the substitution is unobservable within any feasible budget.
func UniversalRV() agent.Program {
	return func(w agent.World) {
		var s rvScratch // reused across every phase of this agent
		s.seedSymm = true
		for p := uint64(1); ; p++ {
			n, d, delta := Untriple(p)
			if d >= n {
				// Shrink(u,v) is a distance in a graph of size n, hence
				// d < n in any consistent hypothesis: skip (zero rounds).
				continue
			}
			if PhaseTime(n, d, delta) >= RoundCap {
				w.Wait(RoundCap)
				continue
			}
			// AsymmRV for its exact duration; it ends at the start node.
			asymmRVWith(w, n, delta, &s)
			// Bookkeeping wait mirroring the paper's "wait until
			// 2(P(n)+δ) rounds from the start of AsymmRV": keeps both
			// agents' phase clocks identical and keeps this agent parked
			// at home while the other may still be finishing its own
			// (δ-shifted) AsymmRV schedule.
			w.Wait(AsymmRVTime(n, delta))
			if delta >= d {
				symmRVWith(w, n, d, delta, &s)
			}
		}
	}
}

// AsymmOnlyUniversalRV is the simplified variant discussed at the end of
// the paper's Section 4: UniversalRV with the SymmRV step deleted. It
// still achieves rendezvous for every STIC with nonsymmetric initial
// positions — with time polynomial in n and δ for the cited AsymmRV
// (ours is exponential only through the view walk) — but never meets from
// symmetric positions. It is the ablation measured by experiment E11.
func AsymmOnlyUniversalRV() agent.Program {
	return func(w agent.World) {
		var s rvScratch // reused across every phase of this agent
		for p := uint64(1); ; p++ {
			n, d, delta := Untriple(p)
			if d >= n {
				continue
			}
			if satMul(2, AsymmRVTime(n, delta)) >= RoundCap {
				w.Wait(RoundCap)
				continue
			}
			asymmRVWith(w, n, delta, &s)
			w.Wait(AsymmRVTime(n, delta))
		}
	}
}
