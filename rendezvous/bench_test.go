package rendezvous

import (
	"testing"

	"repro/graph"
	"repro/sim"
	"repro/view"
)

// BenchmarkViewWalkBatched: the AsymmRV hot path — physical view
// reconstruction into a warm flat tree plus label encoding. Steady state
// is 0 allocs/op: the tree slab, kid arena, encoding and planner buffers
// all live in the per-agent scratch and are reused across walks. With a
// warm scratch this now measures the production repeat-phase path — the
// per-(depth,budget) walk cache replays the recorded script percept-free
// and copies the cached tree, which is what every UniversalRV phase
// after the first does at a given hypothesis. BenchmarkViewWalkCold
// measures the first walk (the speculative degree-reporting planner).
func BenchmarkViewWalkBatched(b *testing.B) {
	g := graph.Petersen()
	var tree view.Tree
	var enc []byte
	w := &soloWorld{g: g, pos: 0, deg: g.Degree(0), entry: -1}
	var s rvScratch
	viewWalkWith(w, 3, RoundCap, &tree, &s)
	enc = tree.AppendEncode(enc[:0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.pos, w.deg, w.entry = 0, g.Degree(0), -1
		viewWalkWith(w, 3, RoundCap, &tree, &s)
		enc = tree.AppendEncode(enc[:0])
	}
	_ = enc
}

// BenchmarkViewWalkCold: the first walk at a hypothesis — the
// degree-reporting planner DFS with nothing cached.
func BenchmarkViewWalkCold(b *testing.B) {
	g := graph.Petersen()
	var tree view.Tree
	w := &soloWorld{g: g, pos: 0, deg: g.Degree(0), entry: -1}
	var s rvScratch
	viewWalkWith(w, 3, RoundCap, &tree, &s) // warm the planner buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.pos, w.deg, w.entry = 0, g.Degree(0), -1
		s.walkCache = nil
		viewWalkWith(w, 3, RoundCap, &tree, &s)
	}
}

// BenchmarkSymmRVTwoNode: the dedicated symmetric procedure on K2, δ=1.
func BenchmarkSymmRVTwoNode(b *testing.B) {
	g := graph.TwoNode()
	prog, err := NewSymmRV(2, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := sim.Run(g, prog, 0, 1, 1, sim.Config{Budget: 4 * SymmRVTime(2, 1, 1)}); res.Outcome != sim.Met {
			b.Fatal("did not meet")
		}
	}
}

// BenchmarkSymmRVRing6: a mid-size symmetric instance (ring-6, Shrink 3).
func BenchmarkSymmRVRing6(b *testing.B) {
	g := graph.Cycle(6)
	prog, err := NewSymmRV(6, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := sim.Run(g, prog, 0, 3, 3, sim.Config{Budget: 3 + 2*SymmRVTime(6, 3, 3)}); res.Outcome != sim.Met {
			b.Fatal("did not meet")
		}
	}
}

// BenchmarkAsymmRVPath3: the nonsymmetric procedure on path-3 endpoints.
func BenchmarkAsymmRVPath3(b *testing.B) {
	g := graph.Path(3)
	prog, err := NewAsymmRV(3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := sim.Run(g, prog, 0, 2, 0, sim.Config{Budget: 2 * AsymmRVTime(3, 0)}); res.Outcome != sim.Met {
			b.Fatal("did not meet")
		}
	}
}

// BenchmarkUniversalRVTwoNode: the zero-knowledge algorithm end to end.
func BenchmarkUniversalRVTwoNode(b *testing.B) {
	g := graph.TwoNode()
	bound := UniversalRVTimeBound(2, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := sim.Run(g, UniversalRV(), 0, 1, 1, sim.Config{Budget: 1 + 2*bound}); res.Outcome != sim.Met {
			b.Fatal("did not meet")
		}
	}
}

// BenchmarkPairing: phase decode speed (UniversalRV spins through many
// skipped phases between executed ones).
func BenchmarkPairing(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		n, d, delta := Untriple(uint64(i%100000 + 1))
		sink += n + d + delta
	}
	_ = sink
}
