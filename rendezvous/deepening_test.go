package rendezvous

import (
	"testing"

	"repro/agent"
	"repro/graph"
	"repro/sim"
	"repro/stic"
)

func TestAsymmRVIDMeetsNonsymmetricPairs(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		u, v int
	}{
		{graph.Path(3), 0, 2},
		{graph.Path(4), 0, 1},
		{graph.Star(4), 0, 2},
		{graph.Tree(graph.ChainShape(3)), 0, 3},
	}
	for _, c := range cases {
		n := uint64(c.g.N())
		for _, delta := range []uint64{0, 1, 3} {
			prog, err := NewAsymmRVID(n, delta)
			if err != nil {
				t.Fatal(err)
			}
			bound := AsymmRVIDTime(n, delta)
			res := sim.Run(c.g, prog, c.u, c.v, delta, sim.Config{Budget: delta + 2*bound})
			if res.Outcome != sim.Met {
				t.Fatalf("%s (%d,%d) δ=%d: %v", c.g, c.u, c.v, delta, res.Outcome)
			}
			if res.TimeFromLater > bound {
				t.Fatalf("%s δ=%d: met after %d > bound %d", c.g, delta, res.TimeFromLater, bound)
			}
		}
	}
}

func TestAsymmRVIDDurationExact(t *testing.T) {
	// Symmetric simultaneous agents cannot meet; both must take exactly
	// AsymmRVIDTime.
	g := graph.Cycle(5)
	want := AsymmRVIDTime(5, 0)
	for v := 0; v < g.N(); v++ {
		got := SoloDuration(g, v, func(w agent.World) { asymmRVID(w, 5, 0) })
		if got != want {
			t.Fatalf("start %d: duration %d, want %d", v, got, want)
		}
	}
	durations := measureDurations(g, 0, 2, 0, 3*want, func(w agent.World) { asymmRVID(w, 5, 0) })
	if len(durations) != 2 || durations[0] != want || durations[1] != want {
		t.Fatalf("paired durations %v, want %d twice", durations, want)
	}
}

func TestAsymmRVIDCheaperOnShallowAsymmetry(t *testing.T) {
	// The point of the extension: on pairs distinguished at depth 1, the
	// deepening variant does far fewer physical moves than the full-depth
	// version before meeting.
	g := graph.Path(4)
	n := uint64(4)
	full, err := NewAsymmRV(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewAsymmRVID(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	resFull := sim.Run(g, full, 0, 1, 0, sim.Config{Budget: 2 * AsymmRVTime(n, 0)})
	resFast := sim.Run(g, fast, 0, 1, 0, sim.Config{Budget: 2 * AsymmRVIDTime(n, 0)})
	if resFull.Outcome != sim.Met || resFast.Outcome != sim.Met {
		t.Fatalf("outcomes %v / %v", resFull.Outcome, resFast.Outcome)
	}
	if resFast.MovesA+resFast.MovesB >= resFull.MovesA+resFull.MovesB {
		t.Fatalf("deepening not cheaper: fast %d+%d moves vs full %d+%d",
			resFast.MovesA, resFast.MovesB, resFull.MovesA, resFull.MovesB)
	}
}

func TestFastUniversalRVSuite(t *testing.T) {
	// Same guarantee set as UniversalRV on the quick STIC suite.
	type caze struct {
		g     *graph.Graph
		u, v  int
		delta uint64
	}
	cases := []caze{
		{graph.TwoNode(), 0, 1, 0}, // infeasible
		{graph.TwoNode(), 0, 1, 1},
		{graph.TwoNode(), 0, 1, 2},
		{graph.Path(3), 0, 2, 0},
		{graph.Path(3), 0, 2, 1},
		{graph.SymmetricTree(graph.ChainShape(1)), 0, 2, 1},
	}
	for _, c := range cases {
		rep := stic.Classify(stic.STIC{G: c.g, U: c.u, V: c.v, Delay: c.delta})
		n := uint64(c.g.N())
		d := uint64(rep.Shrink)
		if !rep.Symmetric || d == 0 {
			d = 1
		}
		bound := FastUniversalRVTimeBound(n, d, c.delta)
		budget := c.delta + 2*bound
		if !rep.Feasible {
			budget = c.delta + 2*FastUniversalRVTimeBound(n, d, c.delta+1)
		}
		res := sim.Run(c.g, FastUniversalRV(), c.u, c.v, c.delta, sim.Config{Budget: budget})
		if (res.Outcome == sim.Met) != rep.Feasible {
			t.Fatalf("%s (%d,%d) δ=%d: outcome %v, feasible %v", c.g, c.u, c.v, c.delta, res.Outcome, rep.Feasible)
		}
		if res.Outcome == sim.Met && res.TimeFromLater > bound {
			t.Fatalf("%s δ=%d: met after %d > fast bound %d", c.g, c.delta, res.TimeFromLater, bound)
		}
	}
}

func TestDepthGeneralizationsMatchFullDepth(t *testing.T) {
	// At depth n-1 the depth-parameterized budgets must coincide with the
	// originals.
	for n := uint64(2); n <= 8; n++ {
		if ViewWalkTimeDepth(n, n-1) != ViewWalkTime(n) {
			t.Fatalf("ViewWalkTimeDepth(%d, %d) mismatch", n, n-1)
		}
		if EncodingBitBudgetDepth(n, n-1) != EncodingBitBudget(n) {
			t.Fatalf("EncodingBitBudgetDepth(%d, %d) mismatch", n, n-1)
		}
	}
}

func TestAsymmRVIDValidation(t *testing.T) {
	if _, err := NewAsymmRVID(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewAsymmRVID(50, 0); err == nil {
		t.Fatal("saturating n accepted")
	}
}
