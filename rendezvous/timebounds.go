package rendezvous

import "repro/uxs"

// RoundCap is the saturation point for all round arithmetic in this
// package. The paper's budgets are exponential (SymmRV) and doubly
// exponential (UniversalRV); computing them must stay total, so every
// duration saturates here instead of wrapping. A run whose budget
// saturates is cut off by the simulator's round budget long before the
// saturated wait elapses — the arithmetic only needs to stay monotone.
const RoundCap = uint64(1) << 62

func satAdd(a, b uint64) uint64 {
	if a > RoundCap-b || a+b > RoundCap {
		return RoundCap
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > RoundCap/b {
		return RoundCap
	}
	return a * b
}

func satPow(base, exp uint64) uint64 {
	r := uint64(1)
	for i := uint64(0); i < exp; i++ {
		r = satMul(r, base)
		if r == RoundCap {
			return RoundCap
		}
	}
	return r
}

// UXSLength returns M, the length of the generated UXS Y(n).
func UXSLength(n uint64) uint64 { return uint64(uxs.DefaultLength(int(n))) }

// PathBudget returns (n-1)^d, the paper's bound on the number of port
// sequences of length d from any node of an n-node graph. Explore pads its
// enumeration to exactly this many iterations so that its duration is
// input-independent (see DESIGN.md, "duration padding").
func PathBudget(n, d uint64) uint64 {
	if n < 2 {
		return 1
	}
	return satPow(n-1, d)
}

// SymmRVTime returns the paper's exact duration T(n, d, δ) of Procedure
// SymmRV (Lemma 3.3):
//
//	T(n,d,δ) = (d+δ) * (n-1)^d * (M+2) + 2*(M+1)
//
// With duration padding, our implementation runs for exactly this many
// rounds (Lemma 3.3 gives it as an upper bound; equality is what keeps the
// two agents' phase clocks in lock-step inside UniversalRV).
func SymmRVTime(n, d, delta uint64) uint64 {
	m := UXSLength(n)
	per := satMul(satAdd(d, delta), PathBudget(n, d))
	return satAdd(satMul(per, satAdd(m, 2)), satMul(2, satAdd(m, 1)))
}

// ViewWalkTime returns V(n), the padded duration of the physical
// truncated-view exploration to depth n-1 used by AsymmRV: a DFS of the
// path tree costs two rounds per tree edge, and the tree of paths of
// length <= n-1 has at most sum_{i=1..n-1} (n-1)^i edges.
func ViewWalkTime(n uint64) uint64 {
	if n < 2 {
		return 0
	}
	total := uint64(0)
	p := uint64(1)
	for i := uint64(1); i <= n-1; i++ {
		p = satMul(p, n-1)
		total = satAdd(total, p)
	}
	return satMul(2, total)
}

// EncodingBitBudget returns K(n), the number of schedule slots of the
// AsymmRV label schedule: an upper bound on the bit length of the
// canonical encoding of any depth-(n-1) truncated view of an n-node graph.
// Each view-tree or frontier node encodes in at most encBytesPerNode
// bytes; the tree of paths of length <= n-1 has at most
// sum_{i=0..n-1} (n-1)^i nodes plus (n-1)^(n-1) frontier marks.
func EncodingBitBudget(n uint64) uint64 {
	if n < 2 {
		return encBytesPerNode * 8
	}
	nodes := uint64(1)
	p := uint64(1)
	for i := uint64(1); i <= n-1; i++ {
		p = satMul(p, n-1)
		nodes = satAdd(nodes, p)
	}
	nodes = satAdd(nodes, p) // frontier '*' marks at depth n-1
	return satMul(satMul(nodes, encBytesPerNode), 8)
}

// encBytesPerNode bounds the encoding cost of one view node:
// "(deg,entry" + ")" with decimal numbers below n <= 10^6 in any graph the
// simulator can hold.
const encBytesPerNode = 18

// UXSRoundTrip returns T_rt(n) = 2*(M+1): the rounds of one full UXS
// application (M+1 moves) plus backtracking home along the reverse path.
func UXSRoundTrip(n uint64) uint64 {
	return satMul(2, satAdd(UXSLength(n), 1))
}

// ActiveRepeats returns R(n, δ) = ceil(δ / T_rt) + 2, the number of
// consecutive UXS round trips per active schedule slot. R*T_rt >= δ + 2*T_rt
// guarantees that an active slot overlaps the other agent's aligned passive
// slot (offset exactly δ) in a window long enough to contain one complete
// round trip, which visits every node while the passive agent sits at home.
func ActiveRepeats(n, delta uint64) uint64 {
	t := UXSRoundTrip(n)
	r := delta / t
	if delta%t != 0 {
		r++
	}
	return satAdd(r, 2)
}

// AsymmRVTime returns D_A(n, δ), the exact padded duration of AsymmRV:
// view walk + K(n) schedule slots of R*T_rt rounds each.
func AsymmRVTime(n, delta uint64) uint64 {
	slot := satMul(ActiveRepeats(n, delta), UXSRoundTrip(n))
	return satAdd(ViewWalkTime(n), satMul(EncodingBitBudget(n), slot))
}

// PhaseTime returns the exact duration of UniversalRV's phase for
// hypothesis (n, d, δ): zero for skipped phases (d >= n), otherwise
// 2*D_A(n,δ) plus T(n,d,δ) when δ >= d.
func PhaseTime(n, d, delta uint64) uint64 {
	if d >= n {
		return 0
	}
	total := satMul(2, AsymmRVTime(n, delta))
	if delta >= d {
		total = satAdd(total, SymmRVTime(n, d, delta))
	}
	return total
}

// UniversalRVTimeBound returns the total rounds UniversalRV needs, counted
// from the later agent's start, to reach the end of the phase whose
// hypothesis triple is (n, d, δ) — the phase by which Theorem 3.1
// guarantees the meeting. This is the quantity Proposition 4.1 bounds by
// O(n+δ)^O(n+δ).
func UniversalRVTimeBound(n, d, delta uint64) uint64 {
	last := PhaseFor(n, d, delta)
	total := uint64(0)
	for p := uint64(1); p <= last; p++ {
		hn, hd, hdelta := Untriple(p)
		total = satAdd(total, PhaseTime(hn, hd, hdelta))
		if total == RoundCap {
			return RoundCap
		}
	}
	return total
}
