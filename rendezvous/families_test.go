package rendezvous

import (
	"testing"

	"repro/graph"
	"repro/shrink"
	"repro/sim"
	"repro/stic"
	"repro/view"
)

func TestSymmRVOnCirculant(t *testing.T) {
	// Circulant graphs are translation-invariant like the oriented torus:
	// every pair is symmetric and Shrink = dist.
	g := graph.Circulant(8, []int{1, 3})
	if !view.AllSymmetric(g) {
		t.Fatal("circulant should be fully symmetric")
	}
	u, v := 0, 4
	r, err := shrink.Shrink(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != g.Dist(u, v) {
		t.Fatalf("circulant Shrink %d != dist %d", r.Value, g.Dist(u, v))
	}
	d := uint64(r.Value)
	prog, err := NewSymmRV(uint64(g.N()), d, d)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(g, prog, u, v, d, sim.Config{Budget: d + 2*SymmRVTime(uint64(g.N()), d, d)})
	if res.Outcome != sim.Met {
		t.Fatalf("circulant SymmRV: %v", res.Outcome)
	}
}

func TestSymmRVOnCubeConnectedCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("CCC(3) has 24 nodes; SymmRV run is a second or two")
	}
	g := graph.CubeConnectedCycles(3)
	if !view.AllSymmetric(g) {
		t.Fatal("CCC should be fully symmetric")
	}
	u, v := 0, 3 // same cycle-coordinate, adjacent hypercube corners? use Shrink
	r, err := shrink.Shrink(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	d := uint64(r.Value)
	prog, err := NewSymmRV(uint64(g.N()), d, d)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(g, prog, u, v, d, sim.Config{Budget: d + 2*SymmRVTime(uint64(g.N()), d, d)})
	if res.Outcome != sim.Met {
		t.Fatalf("CCC SymmRV: %v", res.Outcome)
	}
}

func TestFeasibilityFrontierOnCirculant(t *testing.T) {
	// δ = Shrink-1 infeasible, δ = Shrink feasible — the boundary, on a
	// family not used by the headline experiments.
	g := graph.Circulant(7, []int{1, 2})
	u, v := 0, 3
	r, err := shrink.Shrink(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	below := stic.Classify(stic.STIC{G: g, U: u, V: v, Delay: uint64(r.Value) - 1})
	at := stic.Classify(stic.STIC{G: g, U: u, V: v, Delay: uint64(r.Value)})
	if below.Feasible || !at.Feasible {
		t.Fatalf("frontier wrong: below=%v at=%v", below.Feasible, at.Feasible)
	}
}

func TestSymmRVPropertyOnRandomCirculants(t *testing.T) {
	// Randomized end-to-end property: on a random circulant (always fully
	// symmetric), for a random pair with d = Shrink and δ = d, SymmRV
	// meets within T(n, d, δ). Exercises the whole stack — builder,
	// symmetry, Shrink, UXS, scheduler, algorithm — on instances nobody
	// hand-picked.
	if testing.Short() {
		t.Skip("randomized sweep; covered by fixed instances in short mode")
	}
	rnd := func(seed uint64) (ok bool) {
		n := 5 + int(seed%4)      // 5..8 nodes
		jump := 2 + int(seed/4%2) // jumps {1, 2} or {1, 3}
		if jump > n/2 {
			jump = 2
		}
		g := graph.Circulant(n, []int{1, jump})
		u := 0
		v := 1 + int(seed/8)%(n-1)
		r, err := shrink.Shrink(g, u, v)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := uint64(r.Value)
		prog, err := NewSymmRV(uint64(n), d, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := sim.Run(g, prog, u, v, d, sim.Config{Budget: d + 2*SymmRVTime(uint64(n), d, d)})
		if res.Outcome != sim.Met {
			t.Fatalf("seed %d: %s (%d,%d) d=%d did not meet: %v", seed, g, u, v, d, res.Outcome)
		}
		return true
	}
	for seed := uint64(0); seed < 24; seed++ {
		rnd(seed)
	}
}

func TestAsymmRVOnPetersenPairsIfAny(t *testing.T) {
	// The Petersen labeling may or may not be fully view-homogeneous;
	// handle both honestly: symmetric pairs get the SymmRV check,
	// a nonsymmetric pair (if present) gets AsymmRV.
	g := graph.Petersen()
	ns := stic.NonsymmetricPairs(g)
	if len(ns) == 0 {
		// Fully symmetric labeling: verify SymmRV on one pair instead.
		r, err := shrink.Shrink(g, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		d := uint64(r.Value)
		prog, err := NewSymmRV(10, d, d)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run(g, prog, 0, 7, d, sim.Config{Budget: d + 2*SymmRVTime(10, d, d)})
		if res.Outcome != sim.Met {
			t.Fatalf("petersen SymmRV: %v", res.Outcome)
		}
		return
	}
	u, v := ns[0][0], ns[0][1]
	prog, err := NewAsymmRV(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(g, prog, u, v, 0, sim.Config{Budget: 2 * AsymmRVTime(10, 0)})
	if res.Outcome != sim.Met {
		t.Fatalf("petersen AsymmRV on (%d,%d): %v", u, v, res.Outcome)
	}
}
