package rendezvous

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/agent"
	"repro/graph"
	"repro/uxs"
	"repro/view"
)

// uxsSequenceFor fetches the generated UXS for size n.
func uxsSequenceFor(n uint64) uxs.Sequence { return uxs.Generate(int(n)) }

// soloViewWalk runs the agent-side physical view exploration alone and
// returns the flat tree it built plus the rounds it used.
func soloViewWalk(g *graph.Graph, start, depth int, budget uint64) (*view.Tree, uint64) {
	tree := &view.Tree{}
	w := &soloWorld{g: g, pos: start, deg: g.Degree(start), entry: -1}
	viewWalk(w, depth, budget, tree)
	return tree, w.clock
}

func TestViewWalkMatchesOracle(t *testing.T) {
	// The tree an agent reconstructs by physically exploring all paths
	// must equal view.Truncated, byte for byte after canonical encoding —
	// the property AsymmRV's labels rest on.
	cases := []*graph.Graph{
		graph.TwoNode(),
		graph.Path(4),
		graph.Cycle(5),
		graph.Star(4),
		graph.SymmetricTree(graph.ChainShape(2)),
		graph.OrientedTorus(3, 3),
		graph.Petersen(),
	}
	for _, g := range cases {
		for depth := 0; depth <= 3; depth++ {
			for v := 0; v < g.N(); v++ {
				got, used := soloViewWalk(g, v, depth, RoundCap)
				want := view.Truncated(g, v, depth)
				if !view.Equal(got, want) {
					t.Fatalf("%s node %d depth %d: agent view differs from oracle", g, v, depth)
				}
				if !bytes.Equal(got.Encode(), want.Encode()) {
					t.Fatalf("%s node %d depth %d: encodings differ", g, v, depth)
				}
				// The physical walk must also match the pointer-based
				// reference implementation, not just the flat oracle.
				if !view.RefEqual(got.Ref(), view.RefTruncated(g, v, depth)) {
					t.Fatalf("%s node %d depth %d: agent view differs from reference", g, v, depth)
				}
				// Round accounting: two rounds per path of length <= depth.
				paths := countPaths(g, v, depth)
				if used != 2*uint64(paths) {
					t.Fatalf("%s node %d depth %d: used %d rounds, want %d", g, v, depth, used, 2*paths)
				}
			}
		}
	}
}

// countPaths counts port sequences of length 1..depth from v.
func countPaths(g *graph.Graph, v, depth int) int {
	if depth == 0 {
		return 0
	}
	total := 0
	for p := 0; p < g.Degree(v); p++ {
		to, _ := g.Succ(v, p)
		total += 1 + countPaths(g, to, depth-1)
	}
	return total
}

func TestViewWalkMatchesOracleRandom(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%7)
		g := graph.RandomConnected(n, 0, seed)
		for v := 0; v < n; v++ {
			got, _ := soloViewWalk(g, v, 3, RoundCap)
			if !view.Equal(got, view.Truncated(g, v, 3)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestViewWalkCacheReplayMatchesFirstWalk pins the per-(depth,budget)
// walk cache: a second walk at the same key must replay the exact same
// move script (same rounds, same end position) and deliver the identical
// tree, including under a binding budget cap.
func TestViewWalkCacheReplayMatchesFirstWalk(t *testing.T) {
	cases := []struct {
		g      *graph.Graph
		depth  int
		budget uint64
	}{
		{graph.Path(4), 3, RoundCap},
		{graph.Cycle(5), 3, RoundCap},
		{graph.Petersen(), 2, RoundCap},
		{graph.Cycle(6), 5, 10}, // budget-capped walk: frontier truncation must replay too
	}
	for _, c := range cases {
		for v := 0; v < c.g.N(); v++ {
			var s rvScratch
			w := &soloWorld{g: c.g, pos: v, deg: c.g.Degree(v), entry: -1}
			var first, replay view.Tree
			viewWalkWith(w, c.depth, c.budget, &first, &s)
			used := w.clock
			if w.pos != v {
				t.Fatalf("%s node %d: first walk ended at %d", c.g, v, w.pos)
			}
			viewWalkWith(w, c.depth, c.budget, &replay, &s)
			if w.clock-used != used {
				t.Fatalf("%s node %d: replay used %d rounds, first walk %d", c.g, v, w.clock-used, used)
			}
			if w.pos != v {
				t.Fatalf("%s node %d: replay ended at %d", c.g, v, w.pos)
			}
			if !view.Equal(&first, &replay) {
				t.Fatalf("%s node %d: replayed tree differs from first walk", c.g, v)
			}
			if !bytes.Equal(first.Encode(), replay.Encode()) {
				t.Fatalf("%s node %d: replayed encoding differs", c.g, v)
			}
		}
	}
}

func TestViewWalkBudgetCap(t *testing.T) {
	// With a tight budget the walk truncates instead of overrunning —
	// the wrong-hypothesis safety property.
	g := graph.Cycle(6)
	_, used := soloViewWalk(g, 0, 5, 10)
	if used > 10 {
		t.Fatalf("budget cap violated: used %d rounds", used)
	}
	// Budget 0: no moves at all, the tree is just the root.
	tree, used := soloViewWalk(g, 0, 5, 0)
	if used != 0 || tree.At(0).Deg != 2 {
		t.Fatalf("zero-budget walk moved: used=%d", used)
	}
}

func TestNorrisDepthSufficiencyViaLabels(t *testing.T) {
	// For every nonsymmetric pair, depth n-1 view encodings differ — the
	// premise of AsymmRV's label schedule (Norris' theorem).
	for _, g := range []*graph.Graph{graph.Path(5), graph.Star(4), graph.Tree(graph.FullShape(2, 2)), graph.Petersen()} {
		c := view.Classes(g)
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				tu, _ := soloViewWalk(g, u, g.N()-1, RoundCap)
				tv, _ := soloViewWalk(g, v, g.N()-1, RoundCap)
				same := bytes.Equal(tu.Encode(), tv.Encode())
				if same != (c[u] == c[v]) {
					t.Fatalf("%s (%d,%d): label equality %v but class equality %v", g, u, v, same, c[u] == c[v])
				}
			}
		}
	}
}

func TestUXSRoundTripReturnsHome(t *testing.T) {
	// One round trip must end where it started and take exactly
	// UXSRoundTrip(n) rounds — the slot-length invariant of AsymmRV.
	for _, g := range []*graph.Graph{graph.Cycle(7), graph.Path(4), graph.OrientedTorus(3, 3)} {
		n := uint64(g.N())
		dur := SoloDuration(g, 0, func(w agent.World) {
			newUXSWalk(uxsSequenceFor(n)).roundTrip(w)
		})
		if dur != UXSRoundTrip(n) {
			t.Fatalf("%s: round trip %d rounds, want %d", g, dur, UXSRoundTrip(n))
		}
		w := &soloWorld{g: g, pos: 0, deg: g.Degree(0), entry: -1}
		newUXSWalk(uxsSequenceFor(n)).roundTrip(w)
		if w.pos != 0 {
			t.Fatalf("%s: round trip ended at %d", g, w.pos)
		}
	}
}
