package agent

// Phase labels the procedure a program is currently executing, for wakeup
// accounting. The scheduler counts one wakeup per request it fetches from
// an agent goroutine (sim.Session.Wakeups); tagging requests with the
// producing procedure turns that single counter into a by-procedure
// histogram, so a batching regression is diagnosable — "explore fell back
// to per-move chatter" — rather than just detectable as a bigger total.
//
// Phases are advisory: they change no semantics, only attribution. A
// request issued while no phase is set (or on a World that does not
// support tagging) counts under PhaseOther.
type Phase uint8

const (
	// PhaseOther covers everything not claimed by a specific procedure:
	// program-level bookkeeping, baselines, hand-written test programs.
	PhaseOther Phase = iota
	// PhaseViewWalk is the physical view-walk DFS (rendezvous viewWalk).
	PhaseViewWalk
	// PhaseExplore is path enumeration (rendezvous explore, d >= 1).
	PhaseExplore
	// PhaseSymmRV is the symmetric-rendezvous procedure body.
	PhaseSymmRV
	// PhaseSchedule is the label-schedule machinery of AsymmRV (UXS round
	// trips, encoding playback, padding).
	PhaseSchedule
	// PhaseCount sizes by-phase accounting arrays.
	PhaseCount
)

func (p Phase) String() string {
	switch p {
	case PhaseOther:
		return "other"
	case PhaseViewWalk:
		return "viewWalk"
	case PhaseExplore:
		return "explore"
	case PhaseSymmRV:
		return "symmRV"
	case PhaseSchedule:
		return "schedule"
	}
	return "Phase(?)"
}

// PhaseTagger is the optional World extension behind SetPhase. The
// simulator's native world implements it; reference and test worlds that
// don't simply lose attribution, never behavior.
type PhaseTagger interface {
	// SetPhase sets the phase stamped on the agent's subsequent requests
	// and returns the previous phase, so producers can restore their
	// caller's tag on exit.
	SetPhase(Phase) Phase
}

// SetPhase tags w's subsequent requests with p when the World supports
// tagging, returning the previous phase (PhaseOther otherwise). Producers
// bracket themselves with
//
//	prev := agent.SetPhase(w, agent.PhaseExplore)
//	defer agent.SetPhase(w, prev)
//
// so nested procedures attribute correctly.
func SetPhase(w World, p Phase) Phase {
	if t, ok := w.(PhaseTagger); ok {
		return t.SetPhase(p)
	}
	return PhaseOther
}
