package agent

import "fmt"

// StepKind distinguishes trace entries.
type StepKind int

const (
	// StepMove records an edge traversal.
	StepMove StepKind = iota
	// StepWait records a block of waiting rounds.
	StepWait
)

// Step is one entry of a trajectory trace.
type Step struct {
	Kind StepKind
	// OutPort and EntryPort are set for StepMove: the port taken and the
	// port by which the new node was entered.
	OutPort   int
	EntryPort int
	// Rounds is the duration: 1 for a move, the wait length for a wait.
	Rounds uint64
}

// Trace is an agent's trajectory: the full action/percept history since
// its appearance, in its own clock. Two agents that met can exchange
// traces and run the paper's leader-election construction (package
// election).
type Trace struct {
	Steps []Step
}

// Clock returns the total rounds covered by the trace.
func (t *Trace) Clock() uint64 {
	var total uint64
	for _, s := range t.Steps {
		total += s.Rounds
	}
	return total
}

// Moves returns the number of edge traversals in the trace.
func (t *Trace) Moves() int {
	n := 0
	for _, s := range t.Steps {
		if s.Kind == StepMove {
			n++
		}
	}
	return n
}

// EntryPortAt returns the entry port perceived at round r (the port of
// the move that ended at round r), or -1 if the agent waited into or
// appeared at that round.
func (t *Trace) EntryPortAt(r uint64) int {
	var clock uint64
	for _, s := range t.Steps {
		clock += s.Rounds
		if clock == r && s.Kind == StepMove {
			return s.EntryPort
		}
		if clock >= r {
			break
		}
	}
	return -1
}

// String renders a compact form like "0>1 0>0 .3 1>0" (out>entry, .k for
// k waited rounds).
func (t *Trace) String() string {
	out := ""
	for i, s := range t.Steps {
		if i > 0 {
			out += " "
		}
		if s.Kind == StepWait {
			out += fmt.Sprintf(".%d", s.Rounds)
		} else {
			out += fmt.Sprintf("%d>%d", s.OutPort, s.EntryPort)
		}
	}
	return out
}

// tracingWorld wraps a World and appends every action to a Trace.
type tracingWorld struct {
	World
	trace *Trace
}

func (w *tracingWorld) Move(port int) int {
	entry := w.World.Move(port)
	w.trace.Steps = append(w.trace.Steps, Step{Kind: StepMove, OutPort: port, EntryPort: entry, Rounds: 1})
	return entry
}

// MoveSeq degrades to per-action execution so that every scripted move
// and wait lands in the trace individually. This is load-bearing, not
// just simple: a run that ends mid-script (the scheduler aborts the
// program at the meeting) must leave a trace that extends exactly to the
// last completed round — election.Decide compares trajectory ends — and
// a batched submission would lose the partial script's steps, since its
// grant never reaches the program. Per-action execution records each
// step as it completes, whatever round the run is cut at.
func (w *tracingWorld) MoveSeq(actions []int) []int { return RunScript(w, actions) }

// MoveSeqDegrees degrades the same way; the degree stream carries no
// action of its own, so the trace is identical to the MoveSeq form.
func (w *tracingWorld) MoveSeqDegrees(actions []int) ([]int, []int) {
	return RunScriptDegrees(w, actions)
}

func (w *tracingWorld) Wait(rounds uint64) {
	if rounds == 0 {
		return
	}
	w.World.Wait(rounds)
	w.recordWait(rounds)
}

// recordWait appends waited rounds, coalescing consecutive waits so
// traces stay compact even for the padding-heavy algorithms.
func (w *tracingWorld) recordWait(rounds uint64) {
	if n := len(w.trace.Steps); n > 0 && w.trace.Steps[n-1].Kind == StepWait {
		w.trace.Steps[n-1].Rounds += rounds
		return
	}
	w.trace.Steps = append(w.trace.Steps, Step{Kind: StepWait, Rounds: rounds})
}

// Traced wraps a program so that its actions are recorded into trace.
// The trace is written from the agent's goroutine; read it only after the
// simulation has returned.
func Traced(prog Program, trace *Trace) Program {
	return func(w World) {
		prog(&tracingWorld{World: w, trace: trace})
	}
}
