// Package agent defines the programming model for the paper's anonymous
// mobile agents. An agent is a deterministic program that, in each
// synchronous round, either waits at the current node or moves through a
// chosen port. Its only percepts are the degree of the current node and
// the port through which it last entered a node; node identities are never
// visible, agents carry no labels, and both agents of a rendezvous
// instance run the same program (package sim enforces the lock-step
// semantics, the start delay, and meeting detection).
//
// Programs are written as ordinary Go code against the blocking World
// interface and executed as goroutines by the simulator; the style matches
// the paper's imperative pseudocode (Algorithms 1-3) directly.
package agent

import "fmt"

// World is the interface through which an agent program senses and acts.
// All methods are only legal from within the program's own goroutine.
type World interface {
	// Degree returns the degree of the current node.
	Degree() int

	// EntryPort returns the port through which the agent last entered the
	// current node, or -1 if it has not moved since it appeared.
	EntryPort() int

	// Move leaves the current node through the given port, consuming one
	// round, and returns the port by which the agent enters the new node.
	// It panics with ErrBadPort if the port is out of range — that is a
	// bug in the agent program, not an environment condition.
	Move(port int) int

	// Wait stays at the current node for the given number of rounds.
	// Wait(0) is a no-op that consumes no rounds.
	Wait(rounds uint64)

	// Clock returns the number of rounds elapsed since this agent
	// appeared at its initial node (the paper's synchronized local clock).
	Clock() uint64
}

// Program is a deterministic agent algorithm. The simulator interrupts it
// (by unwinding its goroutine) as soon as rendezvous is achieved or the
// round budget is exhausted; a program that returns leaves its agent
// waiting at its final node forever.
type Program func(w World)

// ErrBadPort is the panic value used when a program moves through an
// out-of-range port.
type ErrBadPort struct {
	Port   int
	Degree int
}

func (e ErrBadPort) Error() string {
	return fmt.Sprintf("agent: move through port %d at node of degree %d", e.Port, e.Degree)
}

// The action alphabet of scripted (oblivious) agents. Theorem 4.1's
// lower-bound argument observes that on port-homogeneous graphs every
// algorithm is equivalent to such a script, because the percept stream
// carries no information.
const (
	// ScriptWait encodes "stay put this round" in a script.
	ScriptWait = -1
)

// Script returns an oblivious program that performs the fixed action list:
// each entry is either ScriptWait or an outgoing port number, applied
// modulo the current degree (so scripts written for regular graphs remain
// runnable anywhere). After the script is exhausted the agent waits
// forever.
func Script(actions []int) Program {
	return func(w World) {
		for _, a := range actions {
			if a == ScriptWait {
				w.Wait(1)
				continue
			}
			w.Move(a % w.Degree())
		}
	}
}

// ScriptWord parses a script from a word over the cardinal letters NESW
// (ports 0..3 as in package graph's Q̂h labeling) plus '.' for a wait, and
// returns the corresponding oblivious program.
func ScriptWord(word string) (Program, error) {
	actions, err := ParseWord(word)
	if err != nil {
		return nil, err
	}
	return Script(actions), nil
}

// ParseWord converts a NESW/'.' word into a script action list.
func ParseWord(word string) ([]int, error) {
	actions := make([]int, 0, len(word))
	for i := 0; i < len(word); i++ {
		switch c := word[i]; c {
		case '.':
			actions = append(actions, ScriptWait)
		case 'N', 'n':
			actions = append(actions, 0)
		case 'E', 'e':
			actions = append(actions, 1)
		case 'S', 's':
			actions = append(actions, 2)
		case 'W', 'w':
			actions = append(actions, 3)
		default:
			return nil, fmt.Errorf("agent: bad script letter %q at byte %d", c, i)
		}
	}
	return actions, nil
}

// MoveEveryRound is the paper's introductory example program for the
// two-node graph: "move at each round" (always through port 0). With any
// odd delay on K2 the two copies meet; with delay 0 they swap forever.
func MoveEveryRound(w World) {
	for {
		w.Move(0)
	}
}

// Sit is the program that waits forever — the non-leader half of the
// "waiting for Mommy" reduction from rendezvous to exploration.
func Sit(w World) {
	for {
		w.Wait(1 << 20)
	}
}
