// Package agent defines the programming model for the paper's anonymous
// mobile agents. An agent is a deterministic program that, in each
// synchronous round, either waits at the current node or moves through a
// chosen port. Its only percepts are the degree of the current node and
// the port through which it last entered a node; node identities are never
// visible, agents carry no labels, and both agents of a rendezvous
// instance run the same program (package sim enforces the lock-step
// semantics, the start delay, and meeting detection).
//
// Programs are written as ordinary Go code against the blocking World
// interface and executed as goroutines by the simulator; the style matches
// the paper's imperative pseudocode (Algorithms 1-3) directly.
//
// # Batched move scripts
//
// Per-round interaction with the simulator costs two channel handshakes
// and a goroutine wakeup. Portions of a program whose next actions do not
// depend on intervening percepts — UXS applications, backtracks along
// recorded entry ports, fixed path enumerations — can instead be submitted
// as one batched script via World.MoveSeq: the scheduler then steps the
// script one action per round itself (preserving exact per-round meeting
// detection) and wakes the program only once, when the whole script has
// run. Script actions are plain ints (see ScriptWait, Rel and ActionPort
// for the encoding); RunScript is the unbatched reference executor that
// defines MoveSeq's semantics action by action. MoveSeqDegrees is the
// percept-streaming form: the same script execution with the degree of
// every visited node reported alongside the entry ports, so producers
// whose only inter-move percept is a Degree() call (view walks, path
// enumerations) batch whole phases instead of waking at every node;
// RunScriptDegrees/UnbatchedDegrees are its reference pair.
//
// The duration of a script is always exactly len(actions) rounds — one
// round per action, moves and waits alike. Procedures that rely on
// duration padding (package rendezvous; every procedure must take an
// input-independent number of rounds, or UniversalRV's phase synchrony
// breaks) can therefore batch freely: batching changes only how the rounds
// are driven, never how many rounds elapse or where the agent is at each
// of them. The same action alphabet (ScriptWait runs included) drives the
// k-agent scheduler: sim.RunMany fast-forwards all k agents over scripted
// stretches with the identical per-round semantics, so a program batches
// once and runs at full speed in both the two-agent and gathering models.
package agent

import "fmt"

// World is the interface through which an agent program senses and acts.
// All methods are only legal from within the program's own goroutine.
type World interface {
	// Degree returns the degree of the current node.
	Degree() int

	// EntryPort returns the port through which the agent last entered the
	// current node, or -1 if it has not moved since it appeared.
	EntryPort() int

	// Move leaves the current node through the given port, consuming one
	// round, and returns the port by which the agent enters the new node.
	// It panics with ErrBadPort if the port is out of range — that is a
	// bug in the agent program, not an environment condition.
	Move(port int) int

	// Wait stays at the current node for the given number of rounds.
	// Wait(0) is a no-op that consumes no rounds.
	Wait(rounds uint64)

	// MoveSeq performs a batched script of actions, one per round, and
	// returns the entry-port percept after each action (unchanged by
	// waits); len(entries) == len(actions). Each action is ScriptWait, an
	// absolute outgoing port applied modulo the current degree (the
	// convention of Script), or an entry-relative move encoded by Rel —
	// exactly the semantics of RunScript, which implementations without a
	// native batched path may delegate to. MoveSeq(nil) is a no-op that
	// consumes no rounds and returns nil.
	//
	// The returned slice is owned by the World and valid only until the
	// program's next action (Move, Wait or MoveSeq); callers that need it
	// longer must copy it. Implementations reuse one buffer per agent so
	// that scripted hot loops stay allocation-free.
	MoveSeq(actions []int) (entries []int)

	// MoveSeqDegrees performs a batched script exactly like MoveSeq and
	// additionally streams the degree percept: degrees[i] is the degree
	// of the node the agent occupies once action i has run — the node
	// just entered for a move (the degree is observed on entry), the
	// unchanged current node for a ScriptWait — i.e. exactly what
	// Degree() would return at that round. len(entries) == len(degrees)
	// == len(actions). The action alphabet and the per-round timing are
	// those of MoveSeq: a degree-reporting grant changes what the agent
	// learns, never how the rounds elapse, so Rel-encoded moves and
	// in-script ScriptWait runs behave identically on both calls.
	// MoveSeqDegrees(nil) is a no-op returning (nil, nil).
	//
	// The degree stream is what lets percept-bound producers (view
	// walks, path enumerations) compile a whole phase into one script:
	// the only thing they previously woke up for was a Degree() call at
	// each newly visited node. RunScriptDegrees is the unbatched
	// reference executor defining the semantics action by action; both
	// returned slices are owned by the World under the same contract as
	// MoveSeq's.
	MoveSeqDegrees(actions []int) (entries, degrees []int)

	// Clock returns the number of rounds elapsed since this agent
	// appeared at its initial node (the paper's synchronized local clock).
	Clock() uint64
}

// Program is a deterministic agent algorithm. The simulator interrupts it
// (by unwinding its goroutine) as soon as rendezvous is achieved or the
// round budget is exhausted; a program that returns leaves its agent
// waiting at its final node forever.
type Program func(w World)

// ErrBadPort is the panic value used when a program moves through an
// out-of-range port.
type ErrBadPort struct {
	Port   int
	Degree int
}

func (e ErrBadPort) Error() string {
	return fmt.Sprintf("agent: move through port %d at node of degree %d", e.Port, e.Degree)
}

// The action alphabet of scripted (oblivious) agents. Theorem 4.1's
// lower-bound argument observes that on port-homogeneous graphs every
// algorithm is equivalent to such a script, because the percept stream
// carries no information.
const (
	// ScriptWait encodes "stay put this round" in a script.
	ScriptWait = -1
)

// Rel encodes an entry-relative script move: the agent leaves through port
// (entry + offset) mod degree, where entry is the port by which it entered
// its current node (taken as 0 if it has never moved). This is exactly the
// application rule of universal exploration sequences (package uxs), so a
// whole UXS application batches into one MoveSeq call. offset must be
// non-negative.
func Rel(offset int) int { return -2 - offset }

// ActionPort resolves one script action against the agent's current
// percepts. It returns wait=true for ScriptWait; otherwise the outgoing
// port: absolute actions (>= 0) are applied modulo degree, Rel-encoded
// actions relative to entry (with entry < 0 treated as 0). Every int is a
// valid action; degree must be positive (guaranteed on connected graphs
// of size >= 2). This is the single source of truth for the action
// alphabet — the simulator's scripted step and the direct single-agent
// executors all resolve through it. Almost every real action is already
// in range (or just past it, for small entry-relative offsets), so the
// reduction is a compare-and-subtract before it falls back to the
// division — this sits on the hottest instruction of every scripted
// round.
func ActionPort(action, entry, degree int) (port int, wait bool) {
	if action == ScriptWait {
		return 0, true
	}
	if action >= 0 {
		port = action
	} else {
		if entry < 0 {
			entry = 0
		}
		port = entry + (-2 - action)
	}
	if port >= degree {
		if port < degree<<1 {
			port -= degree
		} else {
			port %= degree
		}
	}
	return port, false
}

// RunScript executes a script one action at a time against w — the
// unbatched reference semantics of World.MoveSeq. World implementations
// without a native batched path delegate to it, and the engine-equivalence
// tests use it (via Unbatched) to check that batched execution is
// behavior-identical.
func RunScript(w World, actions []int) []int {
	if len(actions) == 0 {
		return nil
	}
	entries := make([]int, len(actions))
	entry := w.EntryPort()
	for i, a := range actions {
		if p, wait := ActionPort(a, entry, w.Degree()); wait {
			w.Wait(1)
		} else {
			entry = w.Move(p)
		}
		entries[i] = entry
	}
	return entries
}

// seqWaitBase anchors the compressed-wait encoding of RunSeq scripts:
// actions below it encode whole wait runs (SeqWait). The base sits far
// outside any real Rel offset — an entry-relative move with an offset
// anywhere near 2^30 would need a node of a billion ports — so
// plain-script semantics are untouched; the encoding is only legal
// inside RunSeq. Base and range fit int32 so the package still compiles
// on 32-bit platforms.
const (
	seqWaitBase = -(1 << 30)
	// MaxSeqWait is the longest wait run one SeqWait action can encode;
	// producers flush longer waits as ordinary deferred waits (which the
	// scheduler merges into the next script's lead anyway).
	MaxSeqWait = uint64(1)<<30 - 1
)

// SeqWait encodes an n-round wait run (1 <= n <= MaxSeqWait) as a single
// action of a RunSeq script. The scheduler consumes it in O(1) — the
// run-length-encoded analogue of a materialized ScriptWait run — which is
// what lets percept-free streams (label-schedule gaps, duration-padding
// pads) ride inside one script instead of fragmenting it. SeqWait
// actions are valid ONLY in RunSeq scripts; MoveSeq/RunScript decode
// every negative action as ScriptWait or Rel.
func SeqWait(n uint64) int { return seqWaitBase - int(n) }

// SeqWaitRounds decodes a RunSeq wait-run action, reporting ok=false
// for ordinary actions.
func SeqWaitRounds(a int) (n uint64, ok bool) {
	if a >= seqWaitBase {
		return 0, false
	}
	return uint64(seqWaitBase - a), true
}

// RunSeq performs a batched script for its side effects only: identical
// rounds, moves and timing to the equivalent MoveSeq/Wait sequence, but
// the caller declares it will not read the percept streams, and the
// script may contain SeqWait-encoded wait runs. Worlds that implement
// the optional interface{ RunSeq([]int) } (the simulator's native world
// does) skip producing per-action results and consume wait runs in O(1);
// for everything else this reference fallback expands the script into
// MoveSeq segments and Wait calls — same rounds, same positions. RunSeq
// is an optimization channel, never a behavior change.
func RunSeq(w World, actions []int) {
	if q, ok := w.(interface{ RunSeq([]int) }); ok {
		q.RunSeq(actions)
		return
	}
	start := 0
	for i, a := range actions {
		if n, ok := SeqWaitRounds(a); ok {
			if i > start {
				w.MoveSeq(actions[start:i])
			}
			w.Wait(n)
			start = i + 1
		}
	}
	if start < len(actions) {
		w.MoveSeq(actions[start:])
	}
}

// RunScriptDegrees is the unbatched reference executor of
// World.MoveSeqDegrees: the script runs action by action through Move and
// Wait, and after each action the degree percept is read back with
// Degree(). World implementations without a native degree-reporting path
// delegate to it, and the engine-equivalence tests use it (via
// UnbatchedDegrees) to check that the batched degree stream is
// behavior-identical.
func RunScriptDegrees(w World, actions []int) (entries, degrees []int) {
	if len(actions) == 0 {
		return nil, nil
	}
	entries = make([]int, len(actions))
	degrees = make([]int, len(actions))
	entry := w.EntryPort()
	for i, a := range actions {
		if p, wait := ActionPort(a, entry, w.Degree()); wait {
			w.Wait(1)
		} else {
			entry = w.Move(p)
		}
		entries[i] = entry
		degrees[i] = w.Degree()
	}
	return entries, degrees
}

// Unbatched returns a program identical to prog except that every MoveSeq
// and MoveSeqDegrees call is executed action by action through Move and
// Wait. It pins down the batched semantics: for any program and any STIC,
// the batched and unbatched runs must produce byte-identical results.
func Unbatched(prog Program) Program {
	return func(w World) {
		prog(unbatchedWorld{w})
	}
}

// unbatchedWorld forwards everything but degrades the batched calls to
// their per-action reference executors.
type unbatchedWorld struct {
	World
}

func (u unbatchedWorld) MoveSeq(actions []int) []int { return RunScript(u.World, actions) }

func (u unbatchedWorld) MoveSeqDegrees(actions []int) ([]int, []int) {
	return RunScriptDegrees(u.World, actions)
}

// UnbatchedDegrees returns a program identical to prog except that every
// MoveSeqDegrees call is executed through RunScriptDegrees, with plain
// MoveSeq left on the batched path. It isolates the degree-grant
// machinery: differential runs against it pin exactly the new percept
// stream (Unbatched remains the everything-per-move reference).
func UnbatchedDegrees(prog Program) Program {
	return func(w World) {
		prog(unbatchedDegreesWorld{w})
	}
}

// unbatchedDegreesWorld degrades only MoveSeqDegrees.
type unbatchedDegreesWorld struct {
	World
}

func (u unbatchedDegreesWorld) MoveSeqDegrees(actions []int) ([]int, []int) {
	return RunScriptDegrees(u.World, actions)
}

// Script returns an oblivious program that performs the fixed action list,
// submitted as one batched MoveSeq script. Each entry uses the script
// action alphabet: ScriptWait, an outgoing port number applied modulo the
// current degree (so scripts written for regular graphs remain runnable
// anywhere), or a Rel-encoded entry-relative move — any other negative
// value decodes as some Rel offset, so validate hand-built scripts before
// passing them in. After the script is exhausted the agent waits forever.
func Script(actions []int) Program {
	return func(w World) {
		w.MoveSeq(actions)
	}
}

// ScriptWord parses a script from a word over the cardinal letters NESW
// (ports 0..3 as in package graph's Q̂h labeling) plus '.' for a wait, and
// returns the corresponding oblivious program.
func ScriptWord(word string) (Program, error) {
	actions, err := ParseWord(word)
	if err != nil {
		return nil, err
	}
	return Script(actions), nil
}

// ParseWord converts a NESW/'.' word into a script action list.
func ParseWord(word string) ([]int, error) {
	actions := make([]int, 0, len(word))
	for i := 0; i < len(word); i++ {
		switch c := word[i]; c {
		case '.':
			actions = append(actions, ScriptWait)
		case 'N', 'n':
			actions = append(actions, 0)
		case 'E', 'e':
			actions = append(actions, 1)
		case 'S', 's':
			actions = append(actions, 2)
		case 'W', 'w':
			actions = append(actions, 3)
		default:
			return nil, fmt.Errorf("agent: bad script letter %q at byte %d", c, i)
		}
	}
	return actions, nil
}

// MoveEveryRound is the paper's introductory example program for the
// two-node graph: "move at each round" (always through port 0). With any
// odd delay on K2 the two copies meet; with delay 0 they swap forever.
func MoveEveryRound(w World) {
	for {
		w.Move(0)
	}
}

// Sit is the program that waits forever — the non-leader half of the
// "waiting for Mommy" reduction from rendezvous to exploration.
func Sit(w World) {
	for {
		w.Wait(1 << 20)
	}
}
