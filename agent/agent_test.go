package agent

import (
	"strings"
	"testing"
)

func TestErrBadPortMessage(t *testing.T) {
	err := ErrBadPort{Port: 5, Degree: 2}
	if !strings.Contains(err.Error(), "port 5") || !strings.Contains(err.Error(), "degree 2") {
		t.Fatalf("unhelpful error: %q", err.Error())
	}
}

func TestParseWord(t *testing.T) {
	actions, err := ParseWord("N.esW")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, ScriptWait, 1, 2, 3}
	if len(actions) != len(want) {
		t.Fatalf("actions %v", actions)
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Fatalf("action %d = %d, want %d", i, actions[i], want[i])
		}
	}
	if _, err := ParseWord("NQ"); err == nil {
		t.Fatal("garbage accepted")
	}
	empty, err := ParseWord("")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty word: %v %v", empty, err)
	}
}

func TestTraceStringEmpty(t *testing.T) {
	tr := &Trace{}
	if tr.String() != "" || tr.Clock() != 0 || tr.Moves() != 0 {
		t.Fatal("empty trace accessors wrong")
	}
	if tr.EntryPortAt(1) != -1 {
		t.Fatal("empty trace entry port")
	}
}

func TestTraceEntryPortBeyondEnd(t *testing.T) {
	tr := &Trace{Steps: []Step{{Kind: StepMove, OutPort: 1, EntryPort: 0, Rounds: 1}}}
	if tr.EntryPortAt(2) != -1 {
		t.Fatal("entry port past end should be -1")
	}
	if tr.EntryPortAt(0) != -1 {
		t.Fatal("round zero has no entry")
	}
}
