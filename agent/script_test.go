package agent

import "testing"

func TestActionPort(t *testing.T) {
	cases := []struct {
		action, entry, degree int
		port                  int
		wait                  bool
	}{
		{ScriptWait, 2, 3, 0, true},
		{0, 5, 3, 0, false},       // absolute in range
		{7, 5, 3, 1, false},       // absolute wraps modulo degree
		{Rel(0), 2, 4, 2, false},  // straight back through the entry
		{Rel(3), 1, 4, 0, false},  // UXS rule: (entry + a) mod degree
		{Rel(1), -1, 4, 1, false}, // never moved: entry treated as 0
		{Rel(10), 0, 3, 1, false}, // relative offset wraps too
	}
	for _, c := range cases {
		port, wait := ActionPort(c.action, c.entry, c.degree)
		if port != c.port || wait != c.wait {
			t.Fatalf("ActionPort(%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.action, c.entry, c.degree, port, wait, c.port, c.wait)
		}
	}
}

func TestRelRoundTrips(t *testing.T) {
	for off := 0; off < 50; off++ {
		a := Rel(off)
		if a >= -1 {
			t.Fatalf("Rel(%d) = %d collides with wait/absolute encodings", off, a)
		}
		port, wait := ActionPort(a, 0, 1000)
		if wait || port != off {
			t.Fatalf("Rel(%d) decodes to (%d,%v)", off, port, wait)
		}
	}
}

// scriptRecorder implements World over a fixed percept script, recording
// actions — enough to check RunScript's bookkeeping without a simulator.
type scriptRecorder struct {
	deg     int
	entry   int
	clock   uint64
	moves   []int
	waits   int
	nextEnt func(port int) int
}

func (r *scriptRecorder) Degree() int    { return r.deg }
func (r *scriptRecorder) EntryPort() int { return r.entry }
func (r *scriptRecorder) Clock() uint64  { return r.clock }
func (r *scriptRecorder) Move(port int) int {
	r.moves = append(r.moves, port)
	r.entry = r.nextEnt(port)
	r.clock++
	return r.entry
}
func (r *scriptRecorder) Wait(rounds uint64)    { r.waits++; r.clock += rounds }
func (r *scriptRecorder) MoveSeq(a []int) []int { return RunScript(r, a) }
func (r *scriptRecorder) MoveSeqDegrees(a []int) ([]int, []int) {
	return RunScriptDegrees(r, a)
}

func TestRunScriptDegreesBookkeeping(t *testing.T) {
	// Degrees are observed on entry: after each action the stream carries
	// what Degree() returns at that round — unchanged across waits.
	r := &scriptRecorder{deg: 4, entry: -1, nextEnt: func(port int) int { return (port + 1) % 4 }}
	entries, degrees := r.MoveSeqDegrees([]int{0, ScriptWait, Rel(1)})
	if len(entries) != 3 || len(degrees) != 3 {
		t.Fatalf("stream lengths %d/%d", len(entries), len(degrees))
	}
	for i, d := range degrees {
		if d != 4 {
			t.Fatalf("degrees[%d] = %d, want 4 (recorder world is 4-regular)", i, d)
		}
	}
	wantEntries := []int{1, 1, 3}
	for i := range wantEntries {
		if entries[i] != wantEntries[i] {
			t.Fatalf("entries = %v, want %v", entries, wantEntries)
		}
	}
	if r.clock != 3 {
		t.Fatalf("clock = %d, want 3", r.clock)
	}
	if e, d := RunScriptDegrees(r, nil); e != nil || d != nil {
		t.Fatal("empty degree script should return (nil, nil)")
	}
}

func TestRunScriptBookkeeping(t *testing.T) {
	r := &scriptRecorder{deg: 4, entry: -1, nextEnt: func(port int) int { return (port + 1) % 4 }}
	entries := r.MoveSeq([]int{0, ScriptWait, Rel(1), 6})
	if len(entries) != 4 {
		t.Fatalf("entries length %d", len(entries))
	}
	// Move 0 enters by 1; wait leaves entry at 1; Rel(1) = (1+1)%4 = 2,
	// enters by 3; absolute 6 wraps to 2, enters by 3.
	want := []int{1, 1, 3, 3}
	for i := range want {
		if entries[i] != want[i] {
			t.Fatalf("entries = %v, want %v", entries, want)
		}
	}
	if got := r.moves; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("moves = %v", got)
	}
	if r.waits != 1 || r.clock != 4 {
		t.Fatalf("waits=%d clock=%d", r.waits, r.clock)
	}
	if RunScript(r, nil) != nil {
		t.Fatal("empty script should return nil")
	}
	if r.clock != 4 {
		t.Fatal("empty script consumed rounds")
	}
}
