package view

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/graph"
)

func TestQuotientRing(t *testing.T) {
	g := graph.Cycle(8)
	q := NewQuotient(g)
	if q.States() != 1 {
		t.Fatalf("ring quotient has %d states", q.States())
	}
	if err := q.Consistent(g); err != nil {
		t.Fatal(err)
	}
	if q.Size[0] != 8 || q.Degree[0] != 2 {
		t.Fatalf("ring quotient state wrong: %+v", q)
	}
	// Self-loop transitions: the single class maps to itself.
	if q.Next[0][0] != 0 || q.Next[0][1] != 0 {
		t.Fatal("ring quotient transitions wrong")
	}
}

func TestQuotientSymmetricTree(t *testing.T) {
	shape := graph.FullShape(2, 2)
	g := graph.SymmetricTree(shape)
	q := NewQuotient(g)
	if err := q.Consistent(g); err != nil {
		t.Fatal(err)
	}
	// Each mirror pair shares a class: classes = n/2... only if no other
	// coincidences; for the full binary shape the two children of a node
	// are also symmetric, so classes < n/2. Just check fibers are even.
	for c, s := range q.Size {
		if s%2 != 0 {
			t.Fatalf("class %d has odd fiber %d", c, s)
		}
	}
}

func TestQuotientWalkProjection(t *testing.T) {
	// Walks project: α applied in the graph lands in the class of
	// α applied in the quotient.
	g := graph.SymmetricTree(graph.ChainShape(2))
	q := NewQuotient(g)
	for _, alpha := range [][]int{{0}, {0, 0}, {1, 0}, {0, 1, 0}} {
		for v := 0; v < g.N(); v++ {
			end, err := g.Apply(v, alpha)
			if err != nil {
				continue // out-of-range port at some node: skip
			}
			qc, err := q.Walk(q.Class[v], alpha)
			if err != nil {
				t.Fatalf("quotient rejected a walk the graph accepted: %v", err)
			}
			if q.Class[end] != qc {
				t.Fatalf("projection broken at v=%d α=%v", v, alpha)
			}
		}
	}
	if _, err := q.Walk(0, []int{99}); err == nil {
		t.Fatal("quotient accepted invalid port")
	}
}

func TestQuotientRandomGraphsConsistent(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%10)
		g := graph.RandomConnected(n, 0, seed)
		q := NewQuotient(g)
		return q.Consistent(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotientQhatCollapses(t *testing.T) {
	// Q̂h is fully symmetric: the quotient is a single state with four
	// self-loops, whatever h.
	g, _ := graph.Qhat(3)
	q := NewQuotient(g)
	if q.States() != 1 || q.Degree[0] != 4 {
		t.Fatalf("qhat quotient: %d states, degree %v", q.States(), q.Degree)
	}
	if !strings.Contains(q.String(), "1 state(s)") {
		t.Fatalf("string rendering: %q", q.String())
	}
}

func TestQuotientNewFamilies(t *testing.T) {
	// Circulant and CCC labelings are vertex-transitive by construction.
	if q := NewQuotient(graph.Circulant(9, []int{1, 2})); q.States() != 1 {
		t.Fatalf("circulant quotient states %d", q.States())
	}
	if q := NewQuotient(graph.CubeConnectedCycles(3)); q.States() != 1 {
		t.Fatalf("ccc quotient states %d", q.States())
	}
	// Petersen with this explicit labeling: check consistency at least.
	g := graph.Petersen()
	if err := NewQuotient(g).Consistent(g); err != nil {
		t.Fatal(err)
	}
}
