package view

import "repro/graph"

// Refiner computes view-equivalence classes by port-aware integer
// partition refinement, keeping every buffer — colors, the signature
// arena, the open-addressed signature table and the result — for reuse, so
// steady-state calls on same-shaped graphs allocate nothing. A Refiner is
// not safe for concurrent use; give each worker its own (the sim.Sweep
// scratch is the natural home).
type Refiner struct {
	color, next []int32
	sig         []int32 // arena of this round's distinct class signatures
	off         []int32 // off[id]..off[id+1] bound signature id in sig
	table       []int32 // open-addressed: class id + 1, 0 = empty
	out         []int
}

// Classes returns the view-equivalence classes of all nodes of g:
// result[u] == result[v] iff V(u,G) = V(v,G), with classes numbered
// 0..k-1 by first occurrence in node order — deterministic for a given
// graph. The returned slice is owned by the Refiner and overwritten by the
// next call; callers that keep it must copy (the package-level Classes
// does).
//
// Refinement starts from the trivial all-equal coloring; each round hashes
// the integer signature (own color, then per port the entry port and the
// neighbor's color) into class ids and stops at the first round that fails
// to split any class: signatures start with the node's current color, so a
// round can only refine the partition, and an unchanged class count means
// an unchanged partition. Degrees need no special round of their own —
// signature lengths differ, so unequal degrees split immediately. By
// Norris' theorem the stable partition is view equivalence.
func (r *Refiner) Classes(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return r.out[:0]
	}
	r.color = growInt32(r.color, n)
	r.next = growInt32(r.next, n)
	for i := range r.color {
		r.color[i] = 0
	}
	// Table sized to a power of two >= 4n: load factor <= 1/4 with at most
	// n distinct signatures per round.
	tsize := 1
	for tsize < 4*n {
		tsize <<= 1
	}
	r.table = growInt32(r.table, tsize)
	mask := int32(tsize - 1)

	numClasses := 1
	for {
		r.sig = r.sig[:0]
		r.off = append(r.off[:0], 0)
		for i := range r.table {
			r.table[i] = 0
		}
		classes := int32(0)
		for v := 0; v < n; v++ {
			base := len(r.sig)
			d := g.Degree(v)
			r.sig = append(r.sig, r.color[v])
			for p := 0; p < d; p++ {
				to, ep := g.Succ(v, p)
				r.sig = append(r.sig, int32(ep), r.color[to])
			}
			cur := r.sig[base:]
			// FNV-1a over the signature words, probed linearly.
			h := uint64(14695981039346656037)
			for _, x := range cur {
				h ^= uint64(uint32(x))
				h *= 1099511628211
			}
			slot := int32(h) & mask
			id := int32(-1)
			for {
				e := r.table[slot]
				if e == 0 {
					break
				}
				cand := e - 1
				if equalInt32(r.sig[r.off[cand]:r.off[cand+1]], cur) {
					id = cand
					break
				}
				slot = (slot + 1) & mask
			}
			if id < 0 {
				id = classes
				classes++
				r.table[slot] = id + 1
				r.off = append(r.off, int32(len(r.sig)))
			} else {
				r.sig = r.sig[:base] // duplicate signature: discard
			}
			r.next[v] = id
		}
		if int(classes) == numClasses {
			// No class split: the partition is stable, renumbered by first
			// occurrence in node order.
			r.out = r.out[:0]
			for v := 0; v < n; v++ {
				r.out = append(r.out, int(r.next[v]))
			}
			return r.out
		}
		numClasses = int(classes)
		r.color, r.next = r.next, r.color
	}
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Classes is the allocation-per-call convenience form: the returned slice
// is fresh and the caller may keep it.
func Classes(g *graph.Graph) []int {
	var r Refiner
	return append([]int(nil), r.Classes(g)...)
}

// Symmetric reports whether nodes u and v have equal views.
func Symmetric(g *graph.Graph, u, v int) bool {
	var r Refiner
	c := r.Classes(g)
	return c[u] == c[v]
}

// AllSymmetric reports whether every pair of nodes is symmetric (a single
// view class), as the paper asserts for Q̂h and for oriented tori and rings.
func AllSymmetric(g *graph.Graph) bool {
	var r Refiner
	c := r.Classes(g)
	for _, x := range c {
		if x != c[0] {
			return false
		}
	}
	return true
}

// ClassCount returns the number of distinct views in the graph.
func ClassCount(g *graph.Graph) int {
	var r Refiner
	c := r.Classes(g)
	max := -1
	for _, x := range c {
		if x > max {
			max = x
		}
	}
	return max + 1
}
