package view

import (
	"encoding/binary"
	"fmt"

	"repro/graph"
)

// Node is one vertex of a flat truncated view tree (see the package
// comment for the invariants). The zero value is not meaningful on its
// own; nodes are created through Tree.NewNode.
type Node struct {
	Deg       int32
	EntryPort int32 // -1 at the root, the entering port elsewhere
	Kids      int32 // base index into the kid arena, or NoKids
}

const (
	// NoKids marks a node that was never expanded: the truncation-depth
	// frontier, encoded distinctly from an expanded node whose subtrees
	// were cut off.
	NoKids = int32(-1)
	// Frontier marks a kid slot whose subtree was cut off before being
	// built (the '*' of the legacy text encoding).
	Frontier = int32(-1)
)

// Tree is a flat, arena-backed truncated view tree: one node slab plus one
// kid-index arena, reusable across builds via Reset.
type Tree struct {
	nodes []Node
	kids  []int32
}

// Reset empties the tree, keeping both backing arrays for reuse.
func (t *Tree) Reset() {
	t.nodes = t.nodes[:0]
	t.kids = t.kids[:0]
}

// Len returns the number of nodes in the slab.
func (t *Tree) Len() int { return len(t.nodes) }

// At returns node id by value. The root is node 0.
func (t *Tree) At(id int32) Node { return t.nodes[id] }

// NewNode appends a node with no kid arena and returns its index.
func (t *Tree) NewNode(deg, entry int32) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, Node{Deg: deg, EntryPort: entry, Kids: NoKids})
	return id
}

// Expand allocates node id's Deg kid slots, all initialized to Frontier.
// It must be called at most once per node.
func (t *Tree) Expand(id int32) {
	nd := &t.nodes[id]
	nd.Kids = int32(len(t.kids))
	for i := int32(0); i < nd.Deg; i++ {
		t.kids = append(t.kids, Frontier)
	}
}

// SetKid records kid as the subtree reached through port p of node id.
func (t *Tree) SetKid(id int32, p int, kid int32) {
	t.kids[t.nodes[id].Kids+int32(p)] = kid
}

// SetInfo fills in node id's degree and entry port after the fact. The
// physical view walker creates nodes ahead of their percepts — with
// degree-reporting scripts, a node's degree and entry port arrive only in
// the grant of the batch that first visited it — and patches them here.
// Expand must not be called before the node's true degree is set.
func (t *Tree) SetInfo(id int32, deg, entry int32) {
	nd := &t.nodes[id]
	nd.Deg, nd.EntryPort = deg, entry
}

// CopyFrom replaces t's contents with a structural copy of src, reusing
// t's backing arrays (warm trees copy allocation-free). Node ids carry
// over verbatim.
func (t *Tree) CopyFrom(src *Tree) {
	t.nodes = append(t.nodes[:0], src.nodes...)
	t.kids = append(t.kids[:0], src.kids...)
}

// KidsOf returns node id's kid slots as a slice into the arena (nil when
// the node was never expanded). The slice is valid until the next Expand
// or Reset.
func (t *Tree) KidsOf(id int32) []int32 {
	nd := &t.nodes[id]
	if nd.Kids == NoKids {
		return nil
	}
	return t.kids[nd.Kids : nd.Kids+nd.Deg]
}

// treeBuilder carries the recursion state of Build without a closure, so
// steady-state rebuilds into a warm Tree allocate nothing.
type treeBuilder struct {
	g *graph.Graph
	t *Tree
}

func (b *treeBuilder) rec(node, entry, d int) int32 {
	id := b.t.NewNode(int32(b.g.Degree(node)), int32(entry))
	if d == 0 {
		return id
	}
	b.t.Expand(id)
	deg := b.g.Degree(node)
	for p := 0; p < deg; p++ {
		to, ep := b.g.Succ(node, p)
		b.t.SetKid(id, p, b.rec(to, ep, d-1))
	}
	return id
}

// Build replaces the tree's contents with the view from v truncated to the
// given depth (depth 0 = just the root's degree).
func (t *Tree) Build(g *graph.Graph, v, depth int) {
	t.Reset()
	b := treeBuilder{g: g, t: t}
	b.rec(v, -1, depth)
}

// Truncated returns a fresh tree holding the view from v truncated to the
// given depth. Hot paths should keep a Tree and use Build instead.
func Truncated(g *graph.Graph, v, depth int) *Tree {
	t := &Tree{}
	t.Build(g, v, depth)
	return t
}

// AppendEncode appends the tree's canonical binary encoding to dst and
// returns the extended buffer (see the package comment for the format).
// With a warm dst (and a non-empty tree) it performs no allocations.
func (t *Tree) AppendEncode(dst []byte) []byte {
	if len(t.nodes) == 0 {
		return dst
	}
	return t.appendNode(dst, 0)
}

// Encode is the convenience form of AppendEncode for one-shot callers.
func (t *Tree) Encode() []byte { return t.AppendEncode(nil) }

func (t *Tree) appendNode(dst []byte, id int32) []byte {
	nd := &t.nodes[id]
	hasKids := uint64(0)
	if nd.Kids != NoKids {
		hasKids = 1
	}
	dst = binary.AppendUvarint(dst, uint64(nd.Deg)<<1|hasKids)
	dst = binary.AppendUvarint(dst, uint64(nd.EntryPort+1))
	if hasKids == 1 {
		for _, k := range t.kids[nd.Kids : nd.Kids+nd.Deg] {
			if k == Frontier {
				dst = append(dst, 0)
			} else {
				dst = append(dst, 1)
				dst = t.appendNode(dst, k)
			}
		}
	}
	return dst
}

// maxDecodeDeg bounds per-node degrees accepted by Decode, so corrupt
// input cannot request a giant arena before the length check catches it.
const maxDecodeDeg = 1 << 24

// Decode replaces the tree's contents with the tree serialized in data,
// which must be exactly one AppendEncode image (no trailing bytes).
func (t *Tree) Decode(data []byte) error {
	t.Reset()
	rest, _, err := t.decodeNode(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("view: %d trailing bytes after tree encoding", len(rest))
	}
	return nil
}

func (t *Tree) decodeNode(data []byte) ([]byte, int32, error) {
	head, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, 0, fmt.Errorf("view: truncated node header")
	}
	data = data[k:]
	entryRaw, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, 0, fmt.Errorf("view: truncated entry port")
	}
	data = data[k:]
	deg := head >> 1
	if deg > maxDecodeDeg {
		return nil, 0, fmt.Errorf("view: degree %d exceeds decode bound", deg)
	}
	if entryRaw > maxDecodeDeg {
		return nil, 0, fmt.Errorf("view: entry port %d exceeds decode bound", entryRaw)
	}
	if head&1 == 1 && deg > uint64(len(data)) {
		// An expanded node is followed by one marker byte per kid slot, so
		// a valid encoding always has >= deg bytes left. Checking before
		// Expand keeps a few corrupt bytes from demanding a huge arena.
		return nil, 0, fmt.Errorf("view: degree %d exceeds remaining input (%d bytes)", deg, len(data))
	}
	id := t.NewNode(int32(deg), int32(entryRaw)-1)
	if head&1 == 1 {
		t.Expand(id)
		for p := 0; p < int(deg); p++ {
			if len(data) == 0 {
				return nil, 0, fmt.Errorf("view: truncated kid marker")
			}
			marker := data[0]
			data = data[1:]
			switch marker {
			case 0:
				// Frontier mark; the slot stays Frontier.
			case 1:
				var kid int32
				var err error
				data, kid, err = t.decodeNode(data)
				if err != nil {
					return nil, 0, err
				}
				t.SetKid(id, p, kid)
			default:
				return nil, 0, fmt.Errorf("view: bad kid marker 0x%02x", marker)
			}
		}
	}
	return data, id, nil
}

// Equal reports whether two flat trees are structurally identical.
func Equal(a, b *Tree) bool {
	if a.Len() != b.Len() {
		return false
	}
	if a.Len() == 0 {
		return true
	}
	return equalAt(a, b, 0, 0)
}

func equalAt(a, b *Tree, ia, ib int32) bool {
	na, nb := &a.nodes[ia], &b.nodes[ib]
	if na.Deg != nb.Deg || na.EntryPort != nb.EntryPort {
		return false
	}
	if (na.Kids == NoKids) != (nb.Kids == NoKids) {
		return false
	}
	if na.Kids == NoKids {
		return true
	}
	for p := int32(0); p < na.Deg; p++ {
		ka, kb := a.kids[na.Kids+p], b.kids[nb.Kids+p]
		if (ka == Frontier) != (kb == Frontier) {
			return false
		}
		if ka != Frontier && !equalAt(a, b, ka, kb) {
			return false
		}
	}
	return true
}
