package view

import (
	"fmt"
	"strings"

	"repro/graph"
)

// This file keeps the original pointer-based view tree as an executable
// reference: RefTruncated/RefEncode define the canonical-equality
// semantics the flat Tree and its binary encoder must agree with, and the
// property tests check them against each other on random graphs. Nothing
// on a hot path uses these; they allocate per node by design (that cost is
// exactly why the flat representation replaced them).

// RefNode is one vertex of a pointer-based truncated view tree. The root
// has EntryPort -1; every other node records the port by which the path
// enters it. Kids[p] is the subtree reached by taking outgoing port p, or
// nil beyond the truncation depth.
type RefNode struct {
	Deg       int
	EntryPort int
	Kids      []*RefNode
}

// RefTruncated returns the view from v truncated to the given depth as a
// pointer tree (depth 0 = just the root's degree).
func RefTruncated(g *graph.Graph, v, depth int) *RefNode {
	var rec func(node, entry, d int) *RefNode
	rec = func(node, entry, d int) *RefNode {
		nd := &RefNode{Deg: g.Degree(node), EntryPort: entry}
		if d == 0 {
			return nd
		}
		nd.Kids = make([]*RefNode, nd.Deg)
		for p := 0; p < nd.Deg; p++ {
			to, ep := g.Succ(node, p)
			nd.Kids[p] = rec(to, ep, d-1)
		}
		return nd
	}
	return rec(v, -1, depth)
}

// RefEncode renders the legacy canonical text encoding of a pointer tree:
// equal trees encode equally and different trees differ at some byte
// within both encodings' common prefix range. Format:
//
//	node := '(' deg ',' entry { kid } ')'
//
// with decimal numbers; a nil kid (truncation frontier) encodes as '*'.
func RefEncode(n *RefNode) []byte {
	var b strings.Builder
	var rec func(*RefNode)
	rec = func(nd *RefNode) {
		if nd == nil {
			b.WriteByte('*')
			return
		}
		fmt.Fprintf(&b, "(%d,%d", nd.Deg, nd.EntryPort)
		for _, k := range nd.Kids {
			rec(k)
		}
		b.WriteByte(')')
	}
	rec(n)
	return []byte(b.String())
}

// RefEqual reports whether two pointer trees are identical.
func RefEqual(a, b *RefNode) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Deg != b.Deg || a.EntryPort != b.EntryPort || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !RefEqual(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// Ref converts a flat tree into the equivalent pointer tree — the bridge
// the differential tests use.
func (t *Tree) Ref() *RefNode {
	if t.Len() == 0 {
		return nil
	}
	return t.refAt(0)
}

func (t *Tree) refAt(id int32) *RefNode {
	nd := t.At(id)
	out := &RefNode{Deg: int(nd.Deg), EntryPort: int(nd.EntryPort)}
	if nd.Kids == NoKids {
		return out
	}
	out.Kids = make([]*RefNode, nd.Deg)
	for p, k := range t.KidsOf(id) {
		if k != Frontier {
			out.Kids[p] = t.refAt(k)
		}
	}
	return out
}
