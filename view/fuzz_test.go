package view

import (
	"bytes"
	"testing"

	"repro/graph"
)

// FuzzTreeDecode guards the binary view-tree decoder: arbitrary input —
// corrupt headers, truncated varints, bad kid markers, giant claimed
// degrees — must produce an error or a valid tree, never a panic or an
// unbounded allocation. Accepted inputs must be stable under a
// re-encode/re-decode round trip (the encoding of the decoded tree is a
// fixed point; raw input bytes need not be, because Uvarint accepts
// non-canonical padded varints that AppendEncode never emits).
//
// Under plain `go test` only the seed corpus runs; CI adds a short
// `go test -fuzz=FuzzTreeDecode` smoke run.
func FuzzTreeDecode(f *testing.F) {
	// Valid encodings across the graph families and depths.
	for _, seed := range []struct {
		g    *graph.Graph
		v, d int
	}{
		{graph.TwoNode(), 0, 1},
		{graph.Cycle(5), 2, 3},
		{graph.Path(4), 0, 3},
		{graph.Star(5), 0, 2},
		{graph.OrientedTorus(3, 3), 4, 2},
		{graph.RandomConnected(7, 3, 42), 1, 3},
	} {
		f.Add(Truncated(seed.g, seed.v, seed.d).Encode())
	}
	// Hand-built corruption: truncated header, truncated entry varint,
	// bad kid marker, huge degree claims, trailing garbage, empty input.
	f.Add([]byte{})
	f.Add([]byte{0x80})                   // unterminated varint
	f.Add([]byte{0x03})                   // header only, entry missing
	f.Add([]byte{0x03, 0x00})             // expanded deg-1, kid marker missing
	f.Add([]byte{0x03, 0x00, 0x07})       // bad kid marker
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // giant degree claim
	f.Add([]byte{0x02, 0x00, 0x00})       // trailing byte after a leaf
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Tree
		if err := tr.Decode(data); err != nil {
			return // rejected input: fine, as long as it never panics
		}
		// Accepted: the decoded tree must re-encode deterministically and
		// round-trip to a structurally equal tree whose encoding is a
		// fixed point.
		enc := tr.Encode()
		var tr2 Tree
		if err := tr2.Decode(enc); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\ninput: %x\nenc:   %x", err, data, enc)
		}
		if !Equal(&tr, &tr2) {
			t.Fatalf("decode(encode(tree)) not structurally equal\ninput: %x", data)
		}
		if enc2 := tr2.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point: %x vs %x", enc, enc2)
		}
	})
}

// FuzzTreeDecodeRoundTrip drives the decoder with guaranteed-valid
// encodings built from fuzz-chosen graph parameters: every valid
// encoding must decode to a tree Equal to the source and re-encode
// byte-identically.
func FuzzTreeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(2), uint8(3), uint16(0))
	f.Add(uint8(8), uint8(0), uint8(1), uint16(7))
	f.Add(uint8(3), uint8(1), uint8(4), uint16(99))
	f.Fuzz(func(t *testing.T, n, v, depth uint8, seed uint16) {
		nn := 2 + int(n)%10
		g := graph.RandomConnected(nn, 3, uint64(seed))
		src := Truncated(g, int(v)%nn, int(depth)%4)
		enc := src.Encode()
		var dec Tree
		if err := dec.Decode(enc); err != nil {
			t.Fatalf("valid encoding rejected: %v (%x)", err, enc)
		}
		if !Equal(src, &dec) {
			t.Fatal("round trip changed the tree")
		}
		if !bytes.Equal(enc, dec.Encode()) {
			t.Fatal("round trip changed the encoding")
		}
	})
}
