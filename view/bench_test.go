package view

import (
	"fmt"
	"testing"

	"repro/graph"
)

func BenchmarkClasses(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("ring-%d", n), func(b *testing.B) {
			g := graph.Cycle(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Classes(g)
			}
		})
	}
	b.Run("qhat-4", func(b *testing.B) {
		g, _ := graph.Qhat(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Classes(g)
		}
	})
}

func BenchmarkTruncated(b *testing.B) {
	g := graph.OrientedTorus(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Truncated(g, i%g.N(), 4)
	}
}

func BenchmarkEncode(b *testing.B) {
	g := graph.OrientedTorus(4, 4)
	v := Truncated(g, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(v)
	}
}

func BenchmarkEqualToDepth(b *testing.B) {
	g, _ := graph.Qhat(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !EqualToDepth(g, 0, 1, g.N()-1) {
			b.Fatal("qhat nodes should be symmetric")
		}
	}
}
