package view

import (
	"fmt"
	"testing"

	"repro/graph"
)

func BenchmarkClasses(b *testing.B) {
	bench := func(b *testing.B, g *graph.Graph) {
		var r Refiner
		r.Classes(g) // warm the arenas: steady state is 0 allocs/op
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Classes(g)
		}
	}
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("ring-%d", n), func(b *testing.B) {
			bench(b, graph.Cycle(n))
		})
	}
	b.Run("qhat-4", func(b *testing.B) {
		g, _ := graph.Qhat(4)
		bench(b, g)
	})
}

func BenchmarkTruncated(b *testing.B) {
	g := graph.OrientedTorus(4, 4)
	var t Tree
	t.Build(g, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Build(g, i%g.N(), 4)
	}
}

func BenchmarkEncode(b *testing.B) {
	g := graph.OrientedTorus(4, 4)
	v := Truncated(g, 0, 4)
	buf := v.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = v.AppendEncode(buf[:0])
	}
	_ = buf
}

func BenchmarkEqualToDepth(b *testing.B) {
	g, _ := graph.Qhat(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !EqualToDepth(g, 0, 1, g.N()-1) {
			b.Fatal("qhat nodes should be symmetric")
		}
	}
}
