package view

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/graph"
	"repro/internal/rng"
)

// randomTree builds a random flat tree (random degrees, entry ports,
// truncation frontiers of both kinds) plus the equivalent pointer tree —
// exercising shapes physical walks produce under wrong hypotheses, which
// graph-derived trees never show.
func randomTree(r *rng.RNG, t *Tree, maxDepth int) {
	t.Reset()
	var rec func(entry int32, d int) int32
	rec = func(entry int32, d int) int32 {
		deg := int32(1 + r.Intn(3))
		id := t.NewNode(deg, entry)
		if d == 0 || r.Intn(4) == 0 {
			return id // unexpanded: depth frontier
		}
		t.Expand(id)
		for p := int32(0); p < deg; p++ {
			if r.Intn(5) == 0 {
				continue // budget-cut frontier mark in this slot
			}
			t.SetKid(id, int(p), rec(p%deg, d-1))
		}
		return id
	}
	rec(-1, maxDepth)
}

// TestTreeEncodeDecodeRoundTrip: Decode(AppendEncode(t)) reproduces the
// tree exactly, and re-encoding reproduces the bytes — on random trees
// with both frontier kinds.
func TestTreeEncodeDecodeRoundTrip(t *testing.T) {
	var tr, back Tree
	var enc, enc2 []byte
	for seed := uint64(1); seed <= 400; seed++ {
		r := rng.New(seed)
		randomTree(r, &tr, 4)
		enc = tr.AppendEncode(enc[:0])
		if err := back.Decode(enc); err != nil {
			t.Fatalf("seed %d: decode failed: %v", seed, err)
		}
		if !Equal(&tr, &back) {
			t.Fatalf("seed %d: round-trip tree differs", seed)
		}
		enc2 = back.AppendEncode(enc2[:0])
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: re-encoding differs", seed)
		}
	}
}

// TestTreeEncodeAgreesWithReference: on random trees, the binary encoder's
// equality semantics coincide byte-for-byte with the legacy text encoder —
// two trees get equal binary encodings iff they get equal RefEncode
// encodings (and both iff they are structurally equal).
func TestTreeEncodeAgreesWithReference(t *testing.T) {
	const trees = 60
	flats := make([]Tree, trees)
	encs := make([][]byte, trees)
	refs := make([][]byte, trees)
	for i := range flats {
		r := rng.New(uint64(1000 + i))
		randomTree(r, &flats[i], 3)
		encs[i] = flats[i].Encode()
		refs[i] = RefEncode(flats[i].Ref())
	}
	for i := 0; i < trees; i++ {
		for j := 0; j < trees; j++ {
			newEq := bytes.Equal(encs[i], encs[j])
			oldEq := bytes.Equal(refs[i], refs[j])
			if newEq != oldEq {
				t.Fatalf("trees %d,%d: binary equality %v but reference equality %v", i, j, newEq, oldEq)
			}
			if structEq := Equal(&flats[i], &flats[j]); structEq != newEq {
				t.Fatalf("trees %d,%d: structural equality %v but binary equality %v", i, j, structEq, newEq)
			}
		}
	}
}

// TestTruncatedAgreesWithReference: on random graphs, the flat Build
// produces exactly the tree the pointer-based reference builds.
func TestTruncatedAgreesWithReference(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%7)
		maxExtra := n*(n-1)/2 - (n - 1)
		extra := 0
		if maxExtra > 0 {
			extra = int(extraRaw) % (maxExtra + 1)
		}
		g := graph.RandomConnected(n, extra, seed)
		for v := 0; v < n; v++ {
			for depth := 0; depth <= 3; depth++ {
				flat := Truncated(g, v, depth)
				if !RefEqual(flat.Ref(), RefTruncated(g, v, depth)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeReuse: Reset keeps capacity; rebuilding into a warm tree yields
// identical encodings regardless of what was built before.
func TestTreeReuse(t *testing.T) {
	g1 := graph.Petersen()
	g2 := graph.Path(3)
	want1 := Truncated(g1, 0, 3).Encode()
	want2 := Truncated(g2, 1, 2).Encode()
	var tr Tree
	var enc []byte
	for i := 0; i < 5; i++ {
		tr.Build(g1, 0, 3)
		enc = tr.AppendEncode(enc[:0])
		if !bytes.Equal(enc, want1) {
			t.Fatalf("iteration %d: warm rebuild differs", i)
		}
		tr.Build(g2, 1, 2)
		enc = tr.AppendEncode(enc[:0])
		if !bytes.Equal(enc, want2) {
			t.Fatalf("iteration %d: warm rebuild (small) differs", i)
		}
	}
}

// TestDecodeRejectsCorrupt: truncated and trailing inputs error out
// instead of panicking or silently succeeding.
func TestDecodeRejectsCorrupt(t *testing.T) {
	enc := Truncated(graph.Cycle(5), 0, 3).Encode()
	var back Tree
	for cut := 0; cut < len(enc); cut++ {
		if err := back.Decode(enc[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
	if err := back.Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
	if err := back.Decode(enc); err != nil {
		t.Fatalf("decode of intact encoding failed: %v", err)
	}
}

// TestRefinerReuse: a warm Refiner returns the same partition as a cold
// one across graphs of different shapes and sizes.
func TestRefinerReuse(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(12), graph.Path(5), graph.Star(6),
		graph.Petersen(), graph.TwoNode(), graph.Hypercube(3),
	}
	var r Refiner
	for round := 0; round < 3; round++ {
		for _, g := range graphs {
			got := r.Classes(g)
			want := Classes(g)
			if len(got) != len(want) {
				t.Fatalf("%s: length %d vs %d", g, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: warm refiner diverges at node %d", g, i)
				}
			}
		}
	}
}
