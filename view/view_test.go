package view

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/graph"
)

func TestRingAllSymmetric(t *testing.T) {
	for n := 3; n <= 12; n++ {
		g := graph.Cycle(n)
		if !AllSymmetric(g) {
			t.Fatalf("ring-%d should have a single view class", n)
		}
		if ClassCount(g) != 1 {
			t.Fatalf("ring-%d class count %d", n, ClassCount(g))
		}
	}
}

func TestTorusAllSymmetric(t *testing.T) {
	if !AllSymmetric(graph.OrientedTorus(3, 5)) {
		t.Fatal("oriented torus should be fully symmetric")
	}
	if !AllSymmetric(graph.Hypercube(4)) {
		t.Fatal("hypercube should be fully symmetric")
	}
	if !AllSymmetric(graph.Complete(6)) {
		t.Fatal("canonical complete graph should be fully symmetric")
	}
}

func TestQhatAllSymmetric(t *testing.T) {
	// The paper: "the view of each node of Q̂h is identical, and hence all
	// pairs of nodes are symmetric."
	for h := 2; h <= 4; h++ {
		g, _ := graph.Qhat(h)
		if !AllSymmetric(g) {
			t.Fatalf("qhat-%d should be fully symmetric", h)
		}
	}
}

func TestPathClasses(t *testing.T) {
	// In path-5 (0-1-2-3-4): ends {0,4} symmetric, {1,3} symmetric, middle
	// alone. Note ports break the mirror symmetry for odd interior nodes:
	// node 1 has port 0 to the end and node 3 has port 0 toward... check
	// empirically against the EqualToDepth oracle instead of guessing.
	g := graph.Path(5)
	c := Classes(g)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			want := EqualToDepth(g, u, v, g.N()-1)
			got := c[u] == c[v]
			if want != got {
				t.Fatalf("path-5 symmetry mismatch (%d,%d): refinement=%v oracle=%v", u, v, got, want)
			}
		}
	}
}

func TestSymmetricTreeMirrors(t *testing.T) {
	shape := graph.FullShape(2, 2)
	g := graph.SymmetricTree(shape)
	for v := 0; v < g.N(); v++ {
		m := graph.SymmetricTreeMirror(shape, v)
		if !Symmetric(g, v, m) {
			t.Fatalf("mirror pair (%d,%d) not symmetric", v, m)
		}
	}
	// The two roots are symmetric but a root and a leaf are not.
	if Symmetric(g, 0, 1) {
		t.Fatal("root and child should not be symmetric")
	}
}

func TestStarAsymmetry(t *testing.T) {
	g := graph.Star(6)
	if Symmetric(g, 0, 1) {
		t.Fatal("center and leaf should differ")
	}
	// With the canonical labeling, leaf i hangs off center port i-1, so a
	// leaf's view records a distinct entry port at the center: every leaf
	// is in its own class. (Views are port-sensitive — this is the point.)
	if Symmetric(g, 1, 5) {
		t.Fatal("leaves on distinct center ports should NOT be symmetric")
	}
	if ClassCount(g) != 6 {
		t.Fatalf("star class count %d, want 6", ClassCount(g))
	}
}

func TestRefinementMatchesDepthOracle(t *testing.T) {
	// Property: on random graphs, partition refinement agrees with
	// truncated-view equality at depth n-1 (Norris' theorem).
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw%8)
		maxExtra := n*(n-1)/2 - (n - 1)
		extra := 0
		if maxExtra > 0 {
			extra = int(extraRaw) % (maxExtra + 1)
		}
		g := graph.RandomConnected(n, extra, seed)
		c := Classes(g)
		for u := 0; u < n; u++ {
			for v := u; v < n; v++ {
				if (c[u] == c[v]) != EqualToDepth(g, u, v, n-1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedViewShape(t *testing.T) {
	g := graph.Cycle(4)
	tr := Truncated(g, 0, 2)
	root := tr.At(0)
	if root.Deg != 2 || root.EntryPort != -1 {
		t.Fatalf("root wrong: %+v", root)
	}
	rootKids := tr.KidsOf(0)
	if len(rootKids) != 2 {
		t.Fatalf("root kids %d", len(rootKids))
	}
	// Taking port 0 on the oriented ring enters the next node by port 1.
	kid := tr.At(rootKids[0])
	if kid.EntryPort != 1 || kid.Deg != 2 {
		t.Fatalf("kid wrong: %+v", kid)
	}
	// Depth-2 truncation: grandchildren were never expanded.
	grand := tr.At(tr.KidsOf(rootKids[0])[0])
	if grand.Kids != NoKids {
		t.Fatal("truncation depth not respected")
	}
}

func TestEncodeCanonical(t *testing.T) {
	g := graph.Cycle(6)
	a := Truncated(g, 0, 3).Encode()
	b := Truncated(g, 2, 3).Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("symmetric nodes encoded differently")
	}
	p := graph.Path(4)
	x := Truncated(p, 0, 3).Encode()
	y := Truncated(p, 1, 3).Encode()
	if bytes.Equal(x, y) {
		t.Fatal("nonsymmetric nodes encoded equally")
	}
}

func TestEncodeMatchesEqual(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%6)
		g := graph.RandomConnected(n, 0, seed)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				tu, tv := Truncated(g, u, 3), Truncated(g, v, 3)
				if Equal(tu, tv) != bytes.Equal(tu.Encode(), tv.Encode()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualEmptyHandling(t *testing.T) {
	if !Equal(&Tree{}, &Tree{}) {
		t.Fatal("empty trees should be equal")
	}
	if Equal(&Tree{}, Truncated(graph.TwoNode(), 0, 1)) {
		t.Fatal("empty vs non-empty should differ")
	}
}

func TestViewEquivalenceIsPreservedBySamePort(t *testing.T) {
	// If u, v are symmetric then succ(u,p), succ(v,p) are symmetric — the
	// closure property the rendezvous proofs rely on.
	for _, g := range []*graph.Graph{
		graph.Cycle(8),
		graph.OrientedTorus(3, 3),
		graph.SymmetricTree(graph.ChainShape(2)),
	} {
		c := Classes(g)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if c[u] != c[v] {
					continue
				}
				for p := 0; p < g.Degree(u); p++ {
					tu, _ := g.Succ(u, p)
					tv, _ := g.Succ(v, p)
					if c[tu] != c[tv] {
						t.Fatalf("%s: class closure violated at (%d,%d) port %d", g, u, v, p)
					}
				}
			}
		}
	}
}
