// Package view implements the views of Yamashita & Kameda used throughout
// the paper's preliminaries: the view V(v,G) from a node v is the infinite
// tree of all paths starting at v, coded as sequences of port numbers.
//
// Two nodes are symmetric when their views are equal. By Norris' theorem,
// views of two nodes of an n-node graph are equal iff they are equal when
// truncated to depth n-1, so symmetry is decidable; the package decides it
// in polynomial time with port-aware partition refinement (Classes, with a
// reusable zero-allocation Refiner behind it) and also provides explicit
// truncated view trees with a canonical encoding (shared by the simulated
// agents in package rendezvous, which build the same trees by physically
// exploring).
//
// # Flat representation
//
// Truncated views are stored index-based, not pointer-based: a Tree owns
// one []Node slab plus one []int32 kid arena, and nodes reference each
// other by int32 index into the slab. The invariants:
//
//   - Node 0 is the root; it is created first and its EntryPort is -1.
//   - Every other node's EntryPort is the port by which the unique path
//     from the root enters it (>= 0).
//   - A node's Kids field is either NoKids (the node was never expanded —
//     the truncation-depth frontier) or the base of exactly Deg contiguous
//     slots in the kid arena. Slot p holds the index of the subtree reached
//     through outgoing port p, or Frontier if that subtree was cut off
//     before being built (the budget-exhaustion frontier of a physical
//     walk under a wrong size hypothesis).
//   - Kid indices always point forward in the slab (a parent is created
//     before its children), so iteration over nodes is a pre-order
//     traversal and the structure is acyclic by construction.
//
// A Tree is reusable: Reset keeps both backing arrays, so a steady-state
// walk-encode loop (the AsymmRV hot path) performs no allocations.
//
// # Canonical encoding
//
// AppendEncode renders a canonical, self-delimiting binary encoding into a
// caller-supplied buffer: per node a uvarint of Deg<<1|hasKids and a
// uvarint of EntryPort+1, then (when hasKids) one marker byte per kid slot
// — 0x00 for a Frontier mark, 0x01 followed by the kid's encoding.
// Equal trees encode equally, different trees differ at some byte inside
// both encodings' common prefix (self-delimiting implies prefix-free), and
// every node costs at most a few bytes — comfortably below the
// encBytesPerNode bound package rendezvous sizes its label schedules with.
// Decode inverts the encoding exactly; encode/decode round-trips are
// pinned by property tests against the pointer-based reference
// implementation (RefNode / RefEncode) kept for differential testing.
package view
