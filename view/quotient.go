package view

import (
	"fmt"
	"strings"

	"repro/graph"
)

// Quotient is the minimum base of a port-labeled graph (Yamashita &
// Kameda): one state per view-equivalence class, with deterministic port
// transitions. Two nodes have equal views iff they map to the same
// quotient state, and any walk in the graph projects to a walk in the
// quotient. The quotient is generally a multigraph with self-loops, so it
// is represented as a port automaton rather than a graph.Graph.
type Quotient struct {
	// Class[v] is the quotient state of node v.
	Class []int
	// Degree[c] is the (common) degree of the nodes in class c.
	Degree []int
	// Next[c][p] is the class reached from class c through port p.
	Next [][]int
	// EntryPort[c][p] is the (common) port by which that edge is entered.
	EntryPort [][]int
	// Size[c] is the number of graph nodes in class c (fiber size).
	Size []int
}

// NewQuotient computes the quotient of g from its view classes (via the
// flat Refiner; the transition tables are carved from two shared slabs
// rather than allocated per class).
func NewQuotient(g *graph.Graph) *Quotient {
	class := Classes(g)
	k := 0
	for _, c := range class {
		if c+1 > k {
			k = c + 1
		}
	}
	q := &Quotient{
		Class:     class,
		Degree:    make([]int, k),
		Next:      make([][]int, k),
		EntryPort: make([][]int, k),
		Size:      make([]int, k),
	}
	rep := make([]int, k) // representative node per class
	total := 0
	seen := make([]bool, k)
	for v := 0; v < g.N(); v++ {
		c := class[v]
		q.Size[c]++
		if !seen[c] {
			seen[c] = true
			rep[c] = v
			q.Degree[c] = g.Degree(v)
			total += g.Degree(v)
		}
	}
	nextSlab := make([]int, total)
	entrySlab := make([]int, total)
	at := 0
	for c := 0; c < k; c++ {
		d := q.Degree[c]
		q.Next[c] = nextSlab[at : at+d : at+d]
		q.EntryPort[c] = entrySlab[at : at+d : at+d]
		at += d
		for p := 0; p < d; p++ {
			to, ep := g.Succ(rep[c], p)
			q.Next[c][p] = class[to]
			q.EntryPort[c][p] = ep
		}
	}
	return q
}

// States returns the number of quotient states (distinct views).
func (q *Quotient) States() int { return len(q.Degree) }

// Walk projects a port sequence from a class and returns the final class.
func (q *Quotient) Walk(from int, ports []int) (int, error) {
	cur := from
	for i, p := range ports {
		if p < 0 || p >= q.Degree[cur] {
			return 0, fmt.Errorf("view: quotient walk step %d: port %d out of range (degree %d)", i, p, q.Degree[cur])
		}
		cur = q.Next[cur][p]
	}
	return cur, nil
}

// Consistent checks the defining property against the graph: every node's
// transitions agree with its class's transitions. It is used by tests and
// costs one pass over the edges.
func (q *Quotient) Consistent(g *graph.Graph) error {
	for v := 0; v < g.N(); v++ {
		c := q.Class[v]
		if g.Degree(v) != q.Degree[c] {
			return fmt.Errorf("view: node %d degree %d != class degree %d", v, g.Degree(v), q.Degree[c])
		}
		for p := 0; p < g.Degree(v); p++ {
			to, ep := g.Succ(v, p)
			if q.Class[to] != q.Next[c][p] {
				return fmt.Errorf("view: node %d port %d: class %d != %d", v, p, q.Class[to], q.Next[c][p])
			}
			if ep != q.EntryPort[c][p] {
				return fmt.Errorf("view: node %d port %d: entry %d != %d", v, p, ep, q.EntryPort[c][p])
			}
		}
	}
	total := 0
	for _, s := range q.Size {
		total += s
	}
	if total != g.N() {
		return fmt.Errorf("view: fiber sizes sum to %d, want %d", total, g.N())
	}
	return nil
}

// String renders the automaton compactly, one class per line.
func (q *Quotient) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quotient with %d state(s)\n", q.States())
	for c := 0; c < q.States(); c++ {
		fmt.Fprintf(&b, "  class %d (deg %d, fiber %d):", c, q.Degree[c], q.Size[c])
		for p := 0; p < q.Degree[c]; p++ {
			fmt.Fprintf(&b, " %d->%d/%d", p, q.Next[c][p], q.EntryPort[c][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
