package view

import "repro/graph"

// EqualToDepth reports whether the views from u and v agree when truncated
// to the given depth. It runs in O(n^2 * depth) time via memoized pairwise
// comparison rather than materializing the (exponential) trees. It is the
// independent oracle the refinement and encoding tests check against.
func EqualToDepth(g *graph.Graph, u, v, depth int) bool {
	type key struct{ a, b, d int }
	memo := make(map[key]bool)
	var rec func(a, b, d int) bool
	rec = func(a, b, d int) bool {
		if g.Degree(a) != g.Degree(b) {
			return false
		}
		if a == b || d == 0 {
			return true
		}
		k := key{a, b, d}
		if r, ok := memo[k]; ok {
			return r
		}
		res := true
		for p := 0; p < g.Degree(a); p++ {
			ta, ea := g.Succ(a, p)
			tb, eb := g.Succ(b, p)
			if ea != eb || !rec(ta, tb, d-1) {
				res = false
				break
			}
		}
		memo[k] = res
		return res
	}
	return rec(u, v, depth)
}
