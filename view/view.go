// Package view implements the views of Yamashita & Kameda used throughout
// the paper's preliminaries: the view V(v,G) from a node v is the infinite
// tree of all paths starting at v, coded as sequences of port numbers.
//
// Two nodes are symmetric when their views are equal. By Norris' theorem,
// views of two nodes of an n-node graph are equal iff they are equal when
// truncated to depth n-1, so symmetry is decidable; the package decides it
// in polynomial time with port-aware partition refinement and also provides
// explicit truncated view trees with a canonical encoding (shared by the
// simulated agents in package rendezvous, which build the same trees by
// physically exploring).
package view

import (
	"fmt"
	"strings"

	"repro/graph"
)

// Node is one vertex of a truncated view tree. The root has EntryPort -1;
// every other node records the port by which the path enters it (what an
// agent walking the path would perceive). Kids[p] is the subtree reached by
// taking outgoing port p, or nil beyond the truncation depth.
type Node struct {
	Deg       int
	EntryPort int
	Kids      []*Node
}

// Truncated returns the view from v truncated to the given depth
// (depth 0 = just the root's degree).
func Truncated(g *graph.Graph, v, depth int) *Node {
	var rec func(node, entry, d int) *Node
	rec = func(node, entry, d int) *Node {
		nd := &Node{Deg: g.Degree(node), EntryPort: entry}
		if d == 0 {
			return nd
		}
		nd.Kids = make([]*Node, nd.Deg)
		for p := 0; p < nd.Deg; p++ {
			to, ep := g.Succ(node, p)
			nd.Kids[p] = rec(to, ep, d-1)
		}
		return nd
	}
	return rec(v, -1, depth)
}

// Encode renders a canonical, self-delimiting byte encoding of a view tree:
// equal trees encode equally and different trees differ at some byte within
// both encodings' common prefix range (the encoding is prefix-free among
// trees of the same truncation depth). Format:
//
//	node := '(' deg ',' entry { kid } ')'
//
// with decimal numbers; a nil kid (truncation frontier) encodes as '*'.
func Encode(n *Node) []byte {
	var b strings.Builder
	var rec func(*Node)
	rec = func(nd *Node) {
		if nd == nil {
			b.WriteByte('*')
			return
		}
		fmt.Fprintf(&b, "(%d,%d", nd.Deg, nd.EntryPort)
		for _, k := range nd.Kids {
			rec(k)
		}
		b.WriteByte(')')
	}
	rec(n)
	return []byte(b.String())
}

// Equal reports whether two view trees are identical.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Deg != b.Deg || a.EntryPort != b.EntryPort || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !Equal(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// EqualToDepth reports whether the views from u and v agree when truncated
// to the given depth. It runs in O(n^2 * depth) time via memoized pairwise
// comparison rather than materializing the (exponential) trees.
func EqualToDepth(g *graph.Graph, u, v, depth int) bool {
	type key struct{ a, b, d int }
	memo := make(map[key]bool)
	var rec func(a, b, d int) bool
	rec = func(a, b, d int) bool {
		if g.Degree(a) != g.Degree(b) {
			return false
		}
		if a == b || d == 0 {
			return true
		}
		k := key{a, b, d}
		if r, ok := memo[k]; ok {
			return r
		}
		res := true
		for p := 0; p < g.Degree(a); p++ {
			ta, ea := g.Succ(a, p)
			tb, eb := g.Succ(b, p)
			if ea != eb || !rec(ta, tb, d-1) {
				res = false
				break
			}
		}
		memo[k] = res
		return res
	}
	return rec(u, v, depth)
}

// Classes returns the view-equivalence classes of all nodes: class[u] ==
// class[v] iff V(u,G) = V(v,G). Classes are numbered 0..k-1 by first
// occurrence in node order, so the result is deterministic for a given
// graph. The computation is port-aware integer partition refinement run to
// stabilization, which coincides with view equivalence by Norris' theorem.
//
// Each round hashes the integer signature (own color, then per port the
// entry port and the neighbor's color) into class ids directly — no string
// building, no sorting — and stops when a round fails to split any class:
// signatures start with the node's current color, so a round can only
// refine the partition, and an unchanged class count means an unchanged
// partition.
func Classes(g *graph.Graph) []int {
	n := g.N()
	color := make([]int, n)
	next := make([]int, n)

	// Round 0: color by degree, ids by first occurrence.
	degID := make(map[int]int)
	for v := 0; v < n; v++ {
		id, ok := degID[g.Degree(v)]
		if !ok {
			id = len(degID)
			degID[g.Degree(v)] = id
		}
		color[v] = id
	}
	numClasses := len(degID)

	var (
		buf  []int            // reusable signature buffer
		sigs [][]int          // signature of each class id this round
		tab  map[uint64][]int // FNV hash -> class ids, collision-checked
	)
	for round := 0; round < n; round++ {
		sigs = sigs[:0]
		tab = make(map[uint64][]int, 2*numClasses)
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			buf = buf[:0]
			buf = append(buf, color[v])
			for p := 0; p < d; p++ {
				to, ep := g.Succ(v, p)
				buf = append(buf, ep, color[to])
			}
			h := hashInts(buf)
			id := -1
			for _, cand := range tab[h] {
				if equalInts(sigs[cand], buf) {
					id = cand
					break
				}
			}
			if id < 0 {
				id = len(sigs)
				sigs = append(sigs, append([]int(nil), buf...))
				tab[h] = append(tab[h], id)
			}
			next[v] = id
		}
		if len(sigs) == numClasses {
			// No class split: the partition is stable. next equals the
			// same partition as color, renumbered by first occurrence.
			return next
		}
		numClasses = len(sigs)
		color, next = next, color
	}
	return color
}

// hashInts is FNV-1a over the signature words.
func hashInts(xs []int) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range xs {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Symmetric reports whether nodes u and v have equal views.
func Symmetric(g *graph.Graph, u, v int) bool {
	c := Classes(g)
	return c[u] == c[v]
}

// AllSymmetric reports whether every pair of nodes is symmetric (a single
// view class), as the paper asserts for Q̂h and for oriented tori and rings.
func AllSymmetric(g *graph.Graph) bool {
	c := Classes(g)
	for _, x := range c {
		if x != c[0] {
			return false
		}
	}
	return true
}

// ClassCount returns the number of distinct views in the graph.
func ClassCount(g *graph.Graph) int {
	c := Classes(g)
	max := -1
	for _, x := range c {
		if x > max {
			max = x
		}
	}
	return max + 1
}
