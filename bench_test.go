// Package repro's root benchmark harness: one benchmark per experiment of
// DESIGN.md §5 (the paper has no numbered tables — it is a theory paper —
// so each lemma/theorem/worked example is regenerated as a table; see
// EXPERIMENTS.md for recorded outputs).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment (workload generation,
// parallel parameter sweep, verification checks) once per iteration and
// fails if any of the experiment's internal checks fail, so `-bench` is
// also a correctness gate.
package repro

import (
	"fmt"
	"testing"

	"repro/experiments"
	"repro/graph"
	"repro/rendezvous"
	"repro/sim"
)

func benchExperiment(b *testing.B, run func() *experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := run()
		if !tbl.OK() {
			b.Fatalf("%s failed checks: %v", tbl.ID, tbl.Failed)
		}
		b.ReportMetric(float64(len(tbl.Rows)), "rows")
	}
}

// BenchmarkE1TwoNode regenerates E1: the introduction's two-node example —
// delay is the only symmetry breaker (§1, Corollary 3.1 on K2).
func BenchmarkE1TwoNode(b *testing.B) { benchExperiment(b, experiments.E1) }

// BenchmarkE2Shrink regenerates E2: Shrink across families (Definition 3.1
// worked examples: torus Shrink=dist, symmetric tree Shrink=1).
func BenchmarkE2Shrink(b *testing.B) { benchExperiment(b, experiments.E2) }

// BenchmarkE3Impossibility regenerates E3: exhaustive infeasibility proofs
// below Shrink (Lemma 3.1).
func BenchmarkE3Impossibility(b *testing.B) { benchExperiment(b, experiments.E3) }

// BenchmarkE4SymmRV regenerates E4: SymmRV meets all symmetric STICs with
// δ >= Shrink (Lemma 3.2).
func BenchmarkE4SymmRV(b *testing.B) { benchExperiment(b, experiments.E4) }

// BenchmarkE5TimeBound regenerates E5: SymmRV duration equals T(n,d,δ)
// exactly (Lemma 3.3).
func BenchmarkE5TimeBound(b *testing.B) { benchExperiment(b, experiments.E5) }

// BenchmarkE6AsymmRV regenerates E6: AsymmRV on nonsymmetric pairs
// (Proposition 3.1 substitute).
func BenchmarkE6AsymmRV(b *testing.B) { benchExperiment(b, experiments.E6) }

// BenchmarkE7Universal regenerates E7 (quick form): UniversalRV on the
// feasible/infeasible STIC suite (Theorem 3.1, Corollary 3.1).
func BenchmarkE7Universal(b *testing.B) {
	benchExperiment(b, func() *experiments.Table { return experiments.E7(false) })
}

// BenchmarkE8Qhat regenerates E8: the Figure 1 construction checks.
func BenchmarkE8Qhat(b *testing.B) { benchExperiment(b, experiments.E8) }

// BenchmarkE9LowerBound regenerates E9 (quick form): the Theorem 4.1
// exponential lower-bound curve with machine-verified premises.
func BenchmarkE9LowerBound(b *testing.B) {
	benchExperiment(b, func() *experiments.Table { return experiments.E9(false) })
}

// BenchmarkE10UniversalGrowth regenerates E10: Proposition 4.1's
// O(n+δ)^O(n+δ) guarantee growth.
func BenchmarkE10UniversalGrowth(b *testing.B) { benchExperiment(b, experiments.E10) }

// BenchmarkE11AsymmOnly regenerates E11: the SymmRV-deleted ablation
// (Section 4 closing remark).
func BenchmarkE11AsymmOnly(b *testing.B) { benchExperiment(b, experiments.E11) }

// BenchmarkE12Randomized regenerates E12: the randomized baseline vs the
// deterministic guarantee (Section 5).
func BenchmarkE12Randomized(b *testing.B) { benchExperiment(b, experiments.E12) }

// BenchmarkE13PaddingAblation regenerates E13: the duration-padding
// design-choice ablation (unpadded Explore desynchronizes agents).
func BenchmarkE13PaddingAblation(b *testing.B) { benchExperiment(b, experiments.E13) }

// BenchmarkE14Election regenerates E14: leader election from rendezvous
// trajectories and the waiting-for-Mommy round trip (Section 1).
func BenchmarkE14Election(b *testing.B) { benchExperiment(b, experiments.E14) }

// BenchmarkE15Async regenerates E15: the asynchronous adversary nullifies
// time (Section 5 conclusion).
func BenchmarkE15Async(b *testing.B) { benchExperiment(b, experiments.E15) }

// BenchmarkE16OptimalityGap regenerates E16: exact OPT vs dedicated vs
// universal costs.
func BenchmarkE16OptimalityGap(b *testing.B) { benchExperiment(b, experiments.E16) }

// BenchmarkE17MultiAgent regenerates E17 (quick form): pairwise
// rendezvous among k agents running UniversalRV.
func BenchmarkE17MultiAgent(b *testing.B) {
	benchExperiment(b, func() *experiments.Table { return experiments.E17(false) })
}

// BenchmarkE17Multiagent measures the k-agent scheduler itself at
// k = 2, 4, 8 (channel-bound UniversalRV sweep shape) and k = 32, 64
// (where the position-bucketed meeting scan replaces the O(k²) pairwise
// loop): k UniversalRV agents on a ring with staggered appearance
// rounds, driven through one pooled session (the E17 workload shape
// without the table harness). Distinct from BenchmarkE17MultiAgent
// above, which regenerates the full E17 experiment and carries the
// cross-PR perf trajectory; this one's per-k sub-benchmarks are tracked
// separately by benchdiff ("…Multiagent/k=N" vs "…MultiAgent"), which
// also gates the reported wakeups/op metric.
func BenchmarkE17Multiagent(b *testing.B) {
	prog := rendezvous.UniversalRV()
	for _, k := range []int{2, 4, 8, 32, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g := graph.Cycle(2 * k)
			agents := make([]sim.MultiAgent, k)
			for i := range agents {
				agents[i] = sim.MultiAgent{Program: prog, Start: 2 * i, Appear: uint64(i)}
			}
			sess := sim.NewSession()
			defer sess.Close()
			cfg := sim.MultiConfig{Budget: 500_000}
			b.ReportAllocs()
			var rounds, wakeups uint64
			for i := 0; i < b.N; i++ {
				res := sess.RunMany(g, agents, cfg)
				rounds += res.Rounds
				wakeups += sess.Wakeups()
			}
			b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
			b.ReportMetric(float64(wakeups)/float64(b.N), "wakeups/op")
		})
	}
}

// BenchmarkE18UXSLength regenerates E18: the UXS-length coverage ablation
// behind substitution S1.
func BenchmarkE18UXSLength(b *testing.B) { benchExperiment(b, experiments.E18) }

// BenchmarkE19FastUniversal regenerates E19: the iterative-deepening
// extension versus the paper-faithful UniversalRV.
func BenchmarkE19FastUniversal(b *testing.B) { benchExperiment(b, experiments.E19) }
